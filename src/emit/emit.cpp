#include "emit/emit.h"

#include <unordered_map>
#include <unordered_set>

#include "ir/walk.h"
#include "support/strings.h"

namespace gsopt::emit {

using ir::Block;
using ir::dyn_cast;
using ir::IfNode;
using ir::Instr;
using ir::LoopNode;
using ir::Module;
using ir::Opcode;
using ir::Region;
using ir::Type;
using ir::Var;
using ir::VarKind;

namespace {

/** GLSL literal for one constant lane of the given base type. */
std::string
laneLiteral(double v, const Type &type)
{
    if (type.isInt())
        return std::to_string(static_cast<long>(v));
    if (type.isBool())
        return v != 0.0 ? "true" : "false";
    return formatGlslFloat(v);
}

/** GLSL expression for a whole Const instruction. */
std::string
constLiteral(const Instr &i)
{
    if (i.type.isScalar())
        return laneLiteral(i.constData[0], i.type);
    std::string out = i.type.str() + "(";
    if (i.isSplatConst()) {
        out += laneLiteral(i.constData[0], i.type);
    } else {
        for (size_t k = 0; k < i.constData.size(); ++k) {
            if (k)
                out += ", ";
            out += laneLiteral(i.constData[k], i.type);
        }
    }
    return out + ")";
}

const char kSwizzleChar[4] = {'x', 'y', 'z', 'w'};

class Emitter
{
  public:
    explicit Emitter(const Module &module)
        // Reserve once, from the module shape: measured emission sits
        // around 30-40 bytes per instruction plus the interface header;
        // over-reserving a little keeps every shader single-allocation.
        : module_(module),
          os_(64 + 48 * module.vars.size() +
              56 * module.instructionCount())
    {
    }

    std::string run()
    {
        collectUsedVars();
        emitHeader();
        os_ << "void main() {\n";
        emitLocalDecls();
        emitRegion(module_.body, 1, "");
        os_ << "}\n";
        return os_.take();
    }

  private:
    // ------------------------------------------------------------------
    void collectUsedVars()
    {
        ir::forEachInstr(module_.body, [this](const Instr &i) {
            if (i.var)
                used_.insert(i.var);
        });
        ir::forEachNode(const_cast<Module &>(module_).body,
                        [this](ir::Node &n) {
                            if (auto *l = dyn_cast<LoopNode>(&n)) {
                                if (l->counter)
                                    counters_.insert(l->counter);
                            }
                        });
    }

    /** Interface declarations + const arrays. */
    void emitHeader()
    {
        os_ << "#version 450\n";
        for (const auto &v : module_.vars) {
            // Keep the full interface even if optimisation removed all
            // uses: the measurement framework introspects uniforms and
            // real drivers keep declarations too.
            switch (v->kind) {
              case VarKind::Input:
                os_ << "in " << declOf(*v) << ";\n";
                break;
              case VarKind::Output:
                os_ << "out " << declOf(*v) << ";\n";
                break;
              case VarKind::Uniform:
              case VarKind::Sampler:
                os_ << "uniform " << declOf(*v) << ";\n";
                break;
              case VarKind::ConstArray: {
                if (!used_.count(v))
                    break;
                const Type elem = v->type.elementType();
                os_ << "const " << declOf(*v) << " = " << elem.str()
                    << "[](";
                const int comp = elem.componentCount();
                for (int e = 0; e < v->type.arraySize; ++e) {
                    if (e)
                        os_ << ", ";
                    Instr tmp;
                    tmp.op = Opcode::Const;
                    tmp.type = elem;
                    tmp.constData.assign(
                        v->constInit.begin() + e * comp,
                        v->constInit.begin() + (e + 1) * comp);
                    os_ << constLiteral(tmp);
                }
                os_ << ");\n";
                break;
              }
              case VarKind::Local:
                break;
            }
        }
    }

    std::string declOf(const Var &v) const
    {
        if (v.type.isArray()) {
            return v.type.elementType().str() + " " + v.name + "[" +
                   std::to_string(v.type.arraySize) + "]";
        }
        return v.type.str() + " " + v.name;
    }

    void emitLocalDecls()
    {
        for (const auto &v : module_.vars) {
            if (v->kind != VarKind::Local || !used_.count(v))
                continue;
            if (counters_.count(v))
                continue; // declared by the for-header
            os_ << "    " << declOf(*v) << ";\n";
        }
    }

    // ------------------------------------------------------------------
    /** Rendered reference to a value at a use site. */
    std::string ref(const Instr *i, const std::string &suffix)
    {
        if (i->op == Opcode::Const)
            return constLiteral(*i);
        if (i->op == Opcode::LoadVar && i->var->isReadOnly())
            return i->var->name;
        if (i->op == Opcode::LoadVar &&
            counters_.count(i->var))
            return i->var->name;
        auto it = names_.find(i);
        if (it != names_.end())
            return it->second;
        // Not materialised yet (shouldn't happen in verified IR).
        return "_t" + std::to_string(i->id) + suffix;
    }

    std::string fresh()
    {
        return "_t" + std::to_string(nextTemp_++);
    }

    /** True if the instruction needs no statement of its own. */
    bool isInlinable(const Instr &i) const
    {
        if (i.op == Opcode::Const)
            return true;
        if (i.op == Opcode::LoadVar &&
            (i.var->isReadOnly() || counters_.count(i.var)))
            return true;
        return false;
    }

    void emitRegion(const Region &region, int indent,
                    const std::string &suffix)
    {
        for (const auto &node : region.nodes) {
            if (const auto *b = dyn_cast<Block>(node.get())) {
                for (const auto &i : b->instrs)
                    emitInstr(*i, indent, suffix);
            } else if (const auto *f = dyn_cast<IfNode>(node.get())) {
                pad(indent);
                os_ << "if (" << ref(f->cond, suffix) << ") {\n";
                emitRegion(f->thenRegion, indent + 1, suffix);
                if (!f->elseRegion.empty()) {
                    pad(indent);
                    os_ << "} else {\n";
                    emitRegion(f->elseRegion, indent + 1, suffix);
                }
                pad(indent);
                os_ << "}\n";
            } else if (const auto *l = dyn_cast<LoopNode>(node.get())) {
                emitLoop(*l, indent, suffix);
            }
        }
    }

    void emitLoop(const LoopNode &l, int indent,
                  const std::string &suffix)
    {
        if (l.canonical) {
            pad(indent);
            os_ << "for (int " << l.counter->name << " = " << l.init
                << "; " << l.counter->name << " < " << l.limit << "; "
                << l.counter->name << " += " << l.step << ") {\n";
            emitRegion(l.body, indent + 1, suffix);
            pad(indent);
            os_ << "}\n";
            return;
        }
        // Special case: the condition is exactly one load of a mutable
        // bool variable (the shape our own emission produces). Emit a
        // plain `while (flag)` — this makes emission a fixpoint under
        // re-parsing.
        if (l.condRegion.nodes.size() == 1) {
            const auto *cb = dyn_cast<Block>(l.condRegion.nodes[0].get());
            if (cb && cb->instrs.size() == 1 &&
                cb->instrs[0]->op == Opcode::LoadVar &&
                cb->instrs[0] == l.condValue &&
                cb->instrs[0]->var->kind == VarKind::Local) {
                pad(indent);
                os_ << "while (" << l.condValue->var->name << ") {\n";
                emitRegion(l.body, indent + 1, suffix);
                pad(indent);
                os_ << "}\n";
                return;
            }
        }
        // Generic loop without `break`: evaluate the condition before
        // the loop and re-evaluate it at the end of each iteration.
        const std::string lc = "_lc" + std::to_string(nextLoop_++);
        emitRegion(l.condRegion, indent, suffix);
        pad(indent);
        os_ << "bool " << lc << " = " << ref(l.condValue, suffix)
            << ";\n";
        pad(indent);
        os_ << "while (" << lc << ") {\n";
        emitRegion(l.body, indent + 1, suffix);
        // Second evaluation: temps get a distinct suffix to avoid
        // redeclaration.
        const std::string suffix2 = suffix + "_r";
        {
            // Temporarily shadow names_ for cond instrs: emit with the
            // new suffix, then restore.
            auto saved = names_;
            emitRegion(l.condRegion, indent + 1, suffix2);
            pad(indent + 1);
            os_ << lc << " = " << ref(l.condValue, suffix2) << ";\n";
            names_ = std::move(saved);
        }
        pad(indent);
        os_ << "}\n";
    }

    void pad(int indent)
    {
        os_.append(static_cast<size_t>(indent) * 4, ' ');
    }

    void emitInstr(const Instr &i, int indent, const std::string &suffix)
    {
        switch (i.op) {
          case Opcode::StoreVar:
            pad(indent);
            os_ << i.var->name << " = " << ref(i.operands[0], suffix)
                << ";\n";
            return;
          case Opcode::StoreElem:
            pad(indent);
            os_ << i.var->name << "[" << ref(i.operands[0], suffix)
                << "] = " << ref(i.operands[1], suffix) << ";\n";
            return;
          case Opcode::Discard:
            pad(indent);
            os_ << "discard;\n";
            return;
          default:
            break;
        }
        if (isInlinable(i))
            return;

        // Insert needs a two-statement lowering (copy + component set).
        if (i.op == Opcode::Insert) {
            std::string name = fresh() + suffix;
            pad(indent);
            os_ << i.type.str() << " " << name << " = "
                << ref(i.operands[0], suffix) << ";\n";
            pad(indent);
            os_ << name << "."
                << kSwizzleChar[static_cast<size_t>(i.indices[0])]
                << " = " << ref(i.operands[1], suffix) << ";\n";
            names_[&i] = name;
            return;
        }

        std::string name = fresh() + suffix;
        pad(indent);
        os_ << i.type.str() << " " << name << " = "
            << exprOf(i, suffix) << ";\n";
        names_[&i] = name;
    }

    std::string binaryInfix(const Instr &i, const char *op,
                            const std::string &suffix)
    {
        return ref(i.operands[0], suffix) + " " + op + " " +
               ref(i.operands[1], suffix);
    }

    std::string call(const Instr &i, const std::string &fn,
                     const std::string &suffix)
    {
        std::string out = fn + "(";
        for (size_t k = 0; k < i.operands.size(); ++k) {
            if (k)
                out += ", ";
            out += ref(i.operands[k], suffix);
        }
        return out + ")";
    }

    std::string exprOf(const Instr &i, const std::string &suffix)
    {
        switch (i.op) {
          case Opcode::LoadVar:
            return i.var->name;
          case Opcode::LoadElem:
            return i.var->name + "[" + ref(i.operands[0], suffix) + "]";
          case Opcode::Neg:
            return "-(" + ref(i.operands[0], suffix) + ")";
          case Opcode::Not:
            return "!(" + ref(i.operands[0], suffix) + ")";
          case Opcode::Add:
            return binaryInfix(i, "+", suffix);
          case Opcode::Sub:
            return binaryInfix(i, "-", suffix);
          case Opcode::Mul:
            return binaryInfix(i, "*", suffix);
          case Opcode::Div:
            return binaryInfix(i, "/", suffix);
          case Opcode::Mod:
            if (i.type.isInt())
                return binaryInfix(i, "%", suffix);
            return call(i, "mod", suffix);
          case Opcode::Lt:
            return binaryInfix(i, "<", suffix);
          case Opcode::Le:
            return binaryInfix(i, "<=", suffix);
          case Opcode::Gt:
            return binaryInfix(i, ">", suffix);
          case Opcode::Ge:
            return binaryInfix(i, ">=", suffix);
          case Opcode::Eq:
            return binaryInfix(i, "==", suffix);
          case Opcode::Ne:
            return binaryInfix(i, "!=", suffix);
          case Opcode::LogicalAnd:
            return binaryInfix(i, "&&", suffix);
          case Opcode::LogicalOr:
            return binaryInfix(i, "||", suffix);
          case Opcode::Sin: return call(i, "sin", suffix);
          case Opcode::Cos: return call(i, "cos", suffix);
          case Opcode::Tan: return call(i, "tan", suffix);
          case Opcode::Asin: return call(i, "asin", suffix);
          case Opcode::Acos: return call(i, "acos", suffix);
          case Opcode::Atan: return call(i, "atan", suffix);
          case Opcode::Atan2: return call(i, "atan", suffix);
          case Opcode::Exp: return call(i, "exp", suffix);
          case Opcode::Log: return call(i, "log", suffix);
          case Opcode::Exp2: return call(i, "exp2", suffix);
          case Opcode::Log2: return call(i, "log2", suffix);
          case Opcode::Sqrt: return call(i, "sqrt", suffix);
          case Opcode::InvSqrt: return call(i, "inversesqrt", suffix);
          case Opcode::Abs: return call(i, "abs", suffix);
          case Opcode::Sign: return call(i, "sign", suffix);
          case Opcode::Floor: return call(i, "floor", suffix);
          case Opcode::Ceil: return call(i, "ceil", suffix);
          case Opcode::Fract: return call(i, "fract", suffix);
          case Opcode::Radians: return call(i, "radians", suffix);
          case Opcode::Degrees: return call(i, "degrees", suffix);
          case Opcode::Normalize: return call(i, "normalize", suffix);
          case Opcode::Length: return call(i, "length", suffix);
          case Opcode::Pow: return call(i, "pow", suffix);
          case Opcode::Min: return call(i, "min", suffix);
          case Opcode::Max: return call(i, "max", suffix);
          case Opcode::Step: return call(i, "step", suffix);
          case Opcode::Distance: return call(i, "distance", suffix);
          case Opcode::Dot: return call(i, "dot", suffix);
          case Opcode::Cross: return call(i, "cross", suffix);
          case Opcode::Reflect: return call(i, "reflect", suffix);
          case Opcode::Clamp: return call(i, "clamp", suffix);
          case Opcode::Mix: return call(i, "mix", suffix);
          case Opcode::Smoothstep: return call(i, "smoothstep", suffix);
          case Opcode::Refract: return call(i, "refract", suffix);
          case Opcode::Select:
            return "(" + ref(i.operands[0], suffix) + " ? " +
                   ref(i.operands[1], suffix) + " : " +
                   ref(i.operands[2], suffix) + ")";
          case Opcode::Construct: {
            std::string out = i.type.str() + "(";
            for (size_t k = 0; k < i.operands.size(); ++k) {
                if (k)
                    out += ", ";
                out += ref(i.operands[k], suffix);
            }
            return out + ")";
          }
          case Opcode::Extract:
            return ref(i.operands[0], suffix) + "." +
                   kSwizzleChar[static_cast<size_t>(i.indices[0])];
          case Opcode::Swizzle: {
            std::string out = ref(i.operands[0], suffix) + ".";
            for (int idx : i.indices)
                out += kSwizzleChar[static_cast<size_t>(idx)];
            return out;
          }
          case Opcode::Texture: {
            return "texture(" + i.var->name + ", " +
                   ref(i.operands[0], suffix) + ")";
          }
          case Opcode::TextureBias: {
            return "texture(" + i.var->name + ", " +
                   ref(i.operands[0], suffix) + ", " +
                   ref(i.operands[1], suffix) + ")";
          }
          case Opcode::TextureLod: {
            return "textureLod(" + i.var->name + ", " +
                   ref(i.operands[0], suffix) + ", " +
                   ref(i.operands[1], suffix) + ")";
          }
          default:
            return "/*?" + std::string(ir::opcodeName(i.op)) + "*/0.0";
        }
    }

    const Module &module_;
    StringBuilder os_;
    std::unordered_set<const Var *> used_;
    std::unordered_set<const Var *> counters_;
    std::unordered_map<const Instr *, std::string> names_;
    int nextTemp_ = 0;
    int nextLoop_ = 0;
};

} // namespace

std::string
emitGlsl(const Module &module)
{
    return Emitter(module).run();
}

} // namespace gsopt::emit
