/**
 * @file
 * The offline optimizer facade — the equivalent of invoking the
 * LunarGlass command-line tool with a set of pass flags: GLSL text in,
 * optimised GLSL text out.
 */
#ifndef GSOPT_EMIT_OFFLINE_H
#define GSOPT_EMIT_OFFLINE_H

#include <map>
#include <memory>
#include <string>

#include "ir/ir.h"
#include "passes/passes.h"

namespace gsopt::emit {

/**
 * Front end + lowering: GLSL source to a verified IR module (no
 * optimization beyond what lowering implies).
 *
 * @param predefines preprocessor macros (übershader specialisation)
 */
std::unique_ptr<ir::Module> compileToIr(
    const std::string &source,
    const std::map<std::string, std::string> &predefines = {});

/**
 * The full source-to-source path: compile, run the flagged pass
 * pipeline, and render back to GLSL. Throws gsopt::CompileError on
 * malformed input.
 */
std::string optimizeShaderSource(
    const std::string &source, const passes::OptFlags &flags,
    const std::map<std::string, std::string> &predefines = {});

} // namespace gsopt::emit

#endif // GSOPT_EMIT_OFFLINE_H
