#include "emit/offline.h"

#include "emit/emit.h"
#include "glsl/frontend.h"
#include "lower/lower.h"

namespace gsopt::emit {

std::unique_ptr<ir::Module>
compileToIr(const std::string &source,
            const std::map<std::string, std::string> &predefines)
{
    glsl::CompiledShader cs = glsl::compileShader(source, predefines);
    return lower::lowerShader(cs);
}

std::string
optimizeShaderSource(const std::string &source,
                     const passes::OptFlags &flags,
                     const std::map<std::string, std::string> &predefines)
{
    auto module = compileToIr(source, predefines);
    passes::optimize(*module, flags);
    return emitGlsl(*module);
}

} // namespace gsopt::emit
