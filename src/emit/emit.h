/**
 * @file
 * IR -> GLSL back end: the LunarGlass "GLSL backend" equivalent. Renders
 * an optimised module back to compilable GLSL source.
 *
 * Properties that matter to the experiments:
 *  - Deterministic: the same module always renders to the same text, and
 *    temporaries are renumbered in emission order, so two flag
 *    combinations that produce semantically identical modules produce
 *    *textually* identical shaders. Unique-variant counting (Fig 4c)
 *    dedups on this text.
 *  - Re-parseable by our own front end: the driver-JIT models consume
 *    this output exactly like a real GL driver consumes LunarGlass
 *    output. Generic loops are emitted with a duplicated condition
 *    computation (no `break`), staying inside the supported subset.
 *  - Faithful to the paper's artefact catalogue: scalarised matrix math
 *    and splat-vectorised scalars appear in the output text verbatim.
 */
#ifndef GSOPT_EMIT_EMIT_H
#define GSOPT_EMIT_EMIT_H

#include <string>

#include "ir/ir.h"

namespace gsopt::emit {

/** Render the module as a complete GLSL fragment shader. */
std::string emitGlsl(const ir::Module &module);

} // namespace gsopt::emit

#endif // GSOPT_EMIT_EMIT_H
