/**
 * @file
 * The "lines of code" metric of paper Fig 4a: counted on *preprocessed*
 * source, ignoring non-executable lines — blank lines, comment-only
 * lines, lone brackets, and interface/precision declarations. Unused
 * function definitions still count (the paper notes this limitation of
 * the metric explicitly).
 */
#ifndef GSOPT_ANALYSIS_LOC_H
#define GSOPT_ANALYSIS_LOC_H

#include <string>

namespace gsopt::analysis {

/** Count executable lines of preprocessed GLSL text. */
int executableLines(const std::string &preprocessedSource);

} // namespace gsopt::analysis

#endif // GSOPT_ANALYSIS_LOC_H
