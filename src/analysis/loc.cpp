#include "analysis/loc.h"

#include "support/strings.h"

namespace gsopt::analysis {

namespace {

/** Is this trimmed line only punctuation (braces, parens, semis)? */
bool
isLoneBrackets(std::string_view s)
{
    for (char c : s) {
        if (c != '{' && c != '}' && c != '(' && c != ')' && c != ';' &&
            c != ' ' && c != '\t')
            return false;
    }
    return true;
}

/** Interface/precision declarations are not executable. */
bool
isDeclarationLine(std::string_view s)
{
    for (const char *prefix :
         {"uniform ", "in ", "out ", "varying ", "attribute ",
          "precision ", "layout", "#"}) {
        if (startsWith(s, prefix))
            return true;
    }
    return false;
}

} // namespace

int
executableLines(const std::string &preprocessedSource)
{
    int count = 0;
    bool in_block_comment = false;
    for (const std::string &raw : split(preprocessedSource, '\n')) {
        std::string_view line = trim(raw);
        if (in_block_comment) {
            size_t close = line.find("*/");
            if (close == std::string_view::npos)
                continue;
            line = trim(line.substr(close + 2));
            in_block_comment = false;
        }
        // Strip line comments.
        size_t lc = line.find("//");
        if (lc != std::string_view::npos)
            line = trim(line.substr(0, lc));
        // Strip (possibly unterminated) block comments. The merged
        // text must outlive `line` (a view into it) for the rest of
        // the iteration, so it lives in loop-persistent storage.
        // NOTE: single block comment per line is enough for this
        // metric; nested same-line pairs are uncommon.
        size_t bc = line.find("/*");
        if (bc != std::string_view::npos) {
            static thread_local std::string storage;
            storage.assign(line.substr(0, bc));
            size_t close = line.find("*/", bc + 2);
            if (close == std::string_view::npos)
                in_block_comment = true;
            else
                storage.append(line.substr(close + 2));
            line = trim(storage);
        }
        if (line.empty())
            continue;
        if (isLoneBrackets(line))
            continue;
        if (isDeclarationLine(line))
            continue;
        ++count;
    }
    return count;
}

} // namespace gsopt::analysis
