/**
 * @file
 * Shared test scratch-space helpers.
 *
 * Every test that writes files goes through ScratchDir, which roots
 * all scratch under the system temp directory in a per-process tree
 * (`<tmp>/gsopt-scratch-<pid>/<name>`) — never under the current
 * working directory, so an aborted run cannot litter the repo root
 * (the old per-suite `*_test_scratch/` directories did exactly that).
 * Each ScratchDir removes its subtree on scope exit; the per-process
 * root is cheap to leave behind and lives in tmp anyway.
 */
#ifndef GSOPT_TESTS_TEST_SCRATCH_H
#define GSOPT_TESTS_TEST_SCRATCH_H

#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

namespace gsopt::testutil {

/** The per-process scratch root (created on first use). */
inline const std::string &
scratchRoot()
{
    static const std::string root = [] {
        std::filesystem::path p =
            std::filesystem::temp_directory_path() /
            ("gsopt-scratch-" + std::to_string(::getpid()));
        std::filesystem::create_directories(p);
        return p.string();
    }();
    return root;
}

/** Fresh scratch directory under the temp tree, removed on scope
 * exit. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &name)
        : path_(scratchRoot() + "/" + name)
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }
    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    ScratchDir(const ScratchDir &) = delete;
    ScratchDir &operator=(const ScratchDir &) = delete;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Scoped environment variable (restores the prior value). Note that
 * GSOPT_* env configuration parsed once at startup (GSOPT_FAULTS,
 * GSOPT_THREADS...) is NOT re-read by this process — a ScopedEnv for
 * those only affects child processes spawned inside the scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            old_ = old;
        had_ = std::getenv(name) != nullptr;
        setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (had_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }
    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    const char *name_;
    std::string old_;
    bool had_ = false;
};

} // namespace gsopt::testutil

#endif // GSOPT_TESTS_TEST_SCRATCH_H
