/**
 * @file
 * Minimal self-contained MD5 (RFC 1321 algorithm) for tests that pin
 * or compare byte-exact artefacts — the same digest the campaign
 * tooling uses (`md5sum` of the shard body bytes). Shared by the
 * shard goldens and the distributed-campaign equivalence suite.
 */
#ifndef GSOPT_TESTS_TEST_MD5_H
#define GSOPT_TESTS_TEST_MD5_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace gsopt::testutil {

struct Md5
{
    uint32_t a = 0x67452301u, b = 0xefcdab89u, c = 0x98badcfeu,
             d = 0x10325476u;

    static uint32_t rotl(uint32_t x, int s)
    {
        return (x << s) | (x >> (32 - s));
    }

    void processBlock(const uint8_t *p)
    {
        static const uint32_t K[64] = {
            0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf,
            0x4787c62a, 0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af,
            0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e,
            0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa,
            0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6,
            0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
            0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
            0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
            0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039,
            0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244, 0x432aff97,
            0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d,
            0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
            0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};
        static const int S[64] = {7, 12, 17, 22, 7, 12, 17, 22,
                                  7, 12, 17, 22, 7, 12, 17, 22,
                                  5, 9,  14, 20, 5, 9,  14, 20,
                                  5, 9,  14, 20, 5, 9,  14, 20,
                                  4, 11, 16, 23, 4, 11, 16, 23,
                                  4, 11, 16, 23, 4, 11, 16, 23,
                                  6, 10, 15, 21, 6, 10, 15, 21,
                                  6, 10, 15, 21, 6, 10, 15, 21};
        uint32_t m[16];
        for (int i = 0; i < 16; ++i)
            std::memcpy(&m[i], p + i * 4, 4); // little-endian host ok
        uint32_t A = a, B = b, C = c, D = d;
        for (int i = 0; i < 64; ++i) {
            uint32_t f;
            int g;
            if (i < 16) {
                f = (B & C) | (~B & D);
                g = i;
            } else if (i < 32) {
                f = (D & B) | (~D & C);
                g = (5 * i + 1) & 15;
            } else if (i < 48) {
                f = B ^ C ^ D;
                g = (3 * i + 5) & 15;
            } else {
                f = C ^ (B | ~D);
                g = (7 * i) & 15;
            }
            uint32_t tmp = D;
            D = C;
            C = B;
            B = B + rotl(A + f + K[i] + m[g], S[i]);
            A = tmp;
        }
        a += A;
        b += B;
        c += C;
        d += D;
    }

    std::string digest(const std::string &data)
    {
        std::vector<uint8_t> buf(data.begin(), data.end());
        const uint64_t bit_len = static_cast<uint64_t>(buf.size()) * 8;
        buf.push_back(0x80);
        while (buf.size() % 64 != 56)
            buf.push_back(0);
        for (int i = 0; i < 8; ++i)
            buf.push_back(
                static_cast<uint8_t>((bit_len >> (8 * i)) & 0xff));
        for (size_t off = 0; off < buf.size(); off += 64)
            processBlock(buf.data() + off);

        std::string hex;
        static const char *digits = "0123456789abcdef";
        for (uint32_t word : {a, b, c, d}) {
            for (int i = 0; i < 4; ++i) {
                uint8_t byte =
                    static_cast<uint8_t>((word >> (8 * i)) & 0xff);
                hex.push_back(digits[byte >> 4]);
                hex.push_back(digits[byte & 0xf]);
            }
        }
        return hex;
    }
};

inline std::string
md5Hex(const std::string &data)
{
    return Md5{}.digest(data);
}

} // namespace gsopt::testutil

#endif // GSOPT_TESTS_TEST_MD5_H
