/**
 * @file
 * Distributed-campaign equivalence and fault-matrix suite.
 *
 * The load-bearing property: a coordinator/worker campaign — any
 * worker count, either transport, any assignment order, with or
 * without injected faults — publishes a shard directory *byte
 * identical* (md5 per file) to a plain single-process
 * ExperimentEngine run over the same shaders. Faults may delay units
 * or quarantine them (partial completion), but every byte that lands
 * in the merged directory must be correct: torn, truncated, garbage,
 * wrong-key, and duplicate deliveries are exercised one by one
 * through a scripted transport, and en masse through randomized fault
 * plans over the real transports.
 *
 * This binary hosts subprocess workers (re-executions of itself), so
 * main() diverts into maybeRunWorker() before gtest sees argv.
 * GSOPT_TORTURE_ITERS widens the randomized sweeps (nightly CI).
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "corpus/corpus.h"
#include "support/fault.h"
#include "support/rng.h"
#include "test_md5.h"
#include "test_scratch.h"
#include "tuner/distrib.h"
#include "tuner/experiment.h"

namespace gsopt {
namespace {

namespace fs = std::filesystem;
using testutil::md5Hex;
using testutil::ScopedEnv;
using testutil::ScratchDir;
using tuner::ExperimentEngine;
namespace distrib = tuner::distrib;

// --------------------------------------------------------- helpers

/** Masks any ambient GSOPT_FAULTS plan for phases that must not see
 * injected faults; restored on scope exit. */
fault::ScopedFaultPlan
quiesce()
{
    return fault::ScopedFaultPlan(fault::FaultPlan{});
}

std::vector<corpus::CorpusShader>
miniCorpus()
{
    std::vector<corpus::CorpusShader> shaders;
    for (const char *name :
         {"simple/color_fill", "simple/grayscale", "blur/weighted9",
          "tonemap/aces"}) {
        const corpus::CorpusShader *s = corpus::findShader(name);
        EXPECT_NE(s, nullptr) << name;
        shaders.push_back(*s);
    }
    return shaders;
}

int
tortureIters()
{
    if (const char *env = std::getenv("GSOPT_TORTURE_ITERS"))
        return std::max(1, std::atoi(env));
    return 3;
}

std::string
readFile(const fs::path &p)
{
    std::ifstream f(p, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

/** filename -> md5 of file bytes, for a whole directory. */
std::map<std::string, std::string>
dirDigest(const std::string &dir)
{
    std::map<std::string, std::string> out;
    for (const auto &entry : fs::directory_iterator(dir))
        out[entry.path().filename().string()] =
            md5Hex(readFile(entry.path()));
    return out;
}

/** The golden: what a plain single-process cached engine run leaves
 * in its shard directory. Computed once per process (fault-free). */
const std::map<std::string, std::string> &
referenceDigest()
{
    static const std::map<std::string, std::string> ref = [] {
        auto quiet = quiesce();
        ScratchDir dir("distrib_reference");
        ExperimentEngine engine(miniCorpus(), /*threads=*/1,
                                dir.path());
        return dirDigest(dir.path());
    }();
    return ref;
}

/** Correct full shard file bytes for one shader, as a worker would
 * ship them. */
std::string
validUnitBytes(const corpus::CorpusShader &shader)
{
    auto quiet = quiesce();
    const uint64_t key =
        tuner::shardKey(shader, tuner::deviceSetKey());
    return distrib::executeUnit(shader, key, 1);
}

/** Every published file must be byte-identical to the reference copy
 * of the same name (subset equality; full equality when the run was
 * healthy). */
void
expectSubsetOfReference(const std::string &dir)
{
    for (const auto &[name, digest] : dirDigest(dir)) {
        auto it = referenceDigest().find(name);
        ASSERT_NE(it, referenceDigest().end())
            << "published unknown shard " << name;
        EXPECT_EQ(digest, it->second) << name;
    }
}

// ------------------------------------------------ scripted transport

/** A WorkerTransport the test scripts event by event: assign() calls
 * a hook which typically queues canned deliveries; poll() drains the
 * queue. Lets the fault matrix hit coordinator edges (torn bytes,
 * duplicates, silent workers) deterministically, with no threads. */
class FakeTransport final : public distrib::WorkerTransport
{
  public:
    explicit FakeTransport(unsigned workers) : liveFlags(workers, true)
    {
    }

    unsigned workerCount() const override
    {
        return static_cast<unsigned>(liveFlags.size());
    }
    bool live(unsigned w) const override { return liveFlags[w]; }

    bool assign(unsigned w, const distrib::WireUnit &unit) override
    {
        if (!liveFlags[w])
            return false;
        assignments++;
        if (onAssign)
            onAssign(w, unit);
        return true;
    }

    distrib::TransportEvent poll(int timeoutMs) override
    {
        if (events.empty()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::min(timeoutMs, 2)));
            return {};
        }
        distrib::TransportEvent ev = std::move(events.front());
        events.pop_front();
        return ev;
    }

    void reap(unsigned w) override
    {
        liveFlags[w] = false;
        reaps++;
    }
    bool revive(unsigned w) override
    {
        if (reviveFails)
            return false;
        liveFlags[w] = true;
        return true;
    }
    void shutdown() override {}

    void pushResult(unsigned w, uint64_t unit, std::string bytes,
                    bool stale = false)
    {
        distrib::TransportEvent ev;
        ev.kind = distrib::TransportEvent::Kind::Result;
        ev.worker = w;
        ev.unit = unit;
        ev.bytes = std::move(bytes);
        ev.stale = stale;
        events.push_back(std::move(ev));
    }
    void pushError(unsigned w, uint64_t unit, std::string msg)
    {
        distrib::TransportEvent ev;
        ev.kind = distrib::TransportEvent::Kind::UnitError;
        ev.worker = w;
        ev.unit = unit;
        ev.bytes = std::move(msg);
        events.push_back(std::move(ev));
    }
    void pushDeath(unsigned w)
    {
        distrib::TransportEvent ev;
        ev.kind = distrib::TransportEvent::Kind::WorkerDied;
        ev.worker = w;
        events.push_back(std::move(ev));
    }

    std::function<void(unsigned, const distrib::WireUnit &)> onAssign;
    std::deque<distrib::TransportEvent> events;
    std::vector<bool> liveFlags;
    int assignments = 0;
    int reaps = 0;
    bool reviveFails = false;
};

// ----------------------------------------------------- equivalence

/** Merged shard directories are byte-identical to the single-process
 * campaign for every worker count, both transports, and randomized
 * assignment orders. */
TEST(DistribEquivalence, InProcessAnyWorkerCountAnyOrder)
{
    auto quiet = quiesce();
    for (unsigned workers : {1u, 2u, 4u}) {
        for (uint64_t seed : {0ull, 0x5eedull, 0xfeedull}) {
            ScratchDir dir("equiv_inproc_" + std::to_string(workers) +
                           "_" + std::to_string(seed));
            distrib::Options opts;
            opts.workers = workers;
            opts.transport = distrib::TransportKind::InProcess;
            opts.scheduleSeed = seed;
            distrib::CampaignCoordinator coord(miniCorpus(),
                                               dir.path(), opts);
            const distrib::DistribHealth &h = coord.run();
            EXPECT_TRUE(h.healthy()) << h.summary();
            EXPECT_EQ(h.unitsCompleted, miniCorpus().size());
            EXPECT_EQ(dirDigest(dir.path()), referenceDigest())
                << "workers=" << workers << " seed=" << seed;
        }
    }
}

/** The real distribution shape: fork/exec'd workers over pipes. CI
 * runs this test with GSOPT_DISTRIB_WORKERS=4 and again under an
 * ambient GSOPT_FAULTS plan covering the ipc.* sites. */
TEST(DistribEquivalence, SubprocessWorkersMatchSingleProcess)
{
    for (unsigned workers : {1u, 4u}) {
        ScratchDir dir("equiv_subproc_" + std::to_string(workers));
        distrib::Options opts;
        opts.workers = workers;
        opts.transport = distrib::TransportKind::Subprocess;
        opts.scheduleSeed = 0x1234;
        opts.maxAssignments = 8; // ambient fault plans may cost lives
        distrib::CampaignCoordinator coord(miniCorpus(), dir.path(),
                                           opts);
        const distrib::DistribHealth &h = coord.run();
        EXPECT_TRUE(h.healthy()) << h.summary();
        EXPECT_EQ(dirDigest(dir.path()), referenceDigest())
            << "workers=" << workers;
    }
}

/** A coordinator started over a partial shard directory re-runs only
 * the missing units — and accepts shards a plain engine wrote (the
 * formats are one and the same). */
TEST(DistribEquivalence, ResumesOverPartialDirectory)
{
    auto quiet = quiesce();
    ScratchDir dir("resume");
    const auto shaders = miniCorpus();
    {
        const std::vector<corpus::CorpusShader> half(shaders.begin(),
                                                     shaders.begin() +
                                                         2);
        ExperimentEngine engine(half, /*threads=*/1, dir.path());
    }
    distrib::Options opts;
    opts.workers = 2;
    distrib::CampaignCoordinator coord(shaders, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run();
    EXPECT_TRUE(h.healthy()) << h.summary();
    EXPECT_EQ(h.unitsFromCache, 2u);
    EXPECT_EQ(h.unitsCompleted, 2u);
    EXPECT_EQ(dirDigest(dir.path()), referenceDigest());
}

/** Worker-side key verification: a unit whose key does not match the
 * worker's own computation is refused (environment drift guard). */
TEST(DistribEquivalence, WorkerRefusesMismatchedShardKey)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    EXPECT_THROW(distrib::executeUnit(shaders[0], 0xdeadbeefull, 1),
                 std::runtime_error);
}

// ---------------------------------------------------- fault matrix

/** Torn delivery: the coordinator must reject the truncated shard,
 * re-queue the unit, and publish only the full-bytes retry. */
TEST(DistribFaults, TruncatedDeliveryRejectedThenRetried)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    const std::vector<corpus::CorpusShader> one{shaders[2]};
    const std::string good = validUnitBytes(shaders[2]);

    ScratchDir dir("torn");
    FakeTransport fake(1);
    int deliveries = 0;
    fake.onAssign = [&](unsigned w, const distrib::WireUnit &u) {
        deliveries++;
        if (deliveries == 1)
            fake.pushResult(w, u.id, good.substr(0, good.size() / 2));
        else
            fake.pushResult(w, u.id, good);
    };
    distrib::Options opts;
    opts.workers = 1;
    distrib::CampaignCoordinator coord(one, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run(fake);
    EXPECT_TRUE(h.healthy()) << h.summary();
    EXPECT_EQ(h.shardsRejected, 1u);
    EXPECT_EQ(h.unitsRequeued, 1u);
    EXPECT_EQ(h.unitsCompleted, 1u);
    expectSubsetOfReference(dir.path());
    EXPECT_EQ(dirDigest(dir.path()).size(), 1u);
}

/** Garbage and wrong-key deliveries both die at merge verification —
 * nothing corrupt is ever published. */
TEST(DistribFaults, GarbageAndWrongKeyDeliveriesRejected)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    const std::vector<corpus::CorpusShader> one{shaders[0]};
    const std::string good = validUnitBytes(shaders[0]);
    const std::string wrongKey = validUnitBytes(shaders[1]);

    ScratchDir dir("garbage");
    FakeTransport fake(1);
    int deliveries = 0;
    fake.onAssign = [&](unsigned w, const distrib::WireUnit &u) {
        deliveries++;
        if (deliveries == 1) {
            std::string garbage(good.size(), '\x5a');
            fake.pushResult(w, u.id, garbage);
        } else if (deliveries == 2) {
            // Valid shard file for a *different* shader: checksum
            // passes, key check must not.
            fake.pushResult(w, u.id, wrongKey);
        } else {
            fake.pushResult(w, u.id, good);
        }
    };
    distrib::Options opts;
    opts.workers = 1;
    opts.maxAssignments = 5;
    distrib::CampaignCoordinator coord(one, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run(fake);
    EXPECT_TRUE(h.healthy()) << h.summary();
    EXPECT_EQ(h.shardsRejected, 2u);
    EXPECT_EQ(h.unitsCompleted, 1u);
    expectSubsetOfReference(dir.path());
    EXPECT_EQ(dirDigest(dir.path()).size(), 1u);
}

/** Duplicate delivery (a lease race resolved twice): merge-if-absent
 * keeps exactly one copy and counts the duplicate. */
TEST(DistribFaults, DuplicateDeliveryDiscarded)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    const std::vector<corpus::CorpusShader> one{shaders[1]};
    const std::string good = validUnitBytes(shaders[1]);

    ScratchDir dir("dup");
    FakeTransport fake(2);
    fake.onAssign = [&](unsigned w, const distrib::WireUnit &u) {
        // A reaped worker's late delivery lands first (stale), then
        // the current assignee's copy of the same unit.
        fake.pushResult(1 - w, u.id, good, /*stale=*/true);
        fake.pushResult(w, u.id, good);
    };
    distrib::Options opts;
    opts.workers = 2;
    distrib::CampaignCoordinator coord(one, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run(fake);
    EXPECT_TRUE(h.healthy()) << h.summary();
    EXPECT_EQ(h.unitsCompleted, 1u);
    EXPECT_EQ(h.duplicateDeliveries, 1u);
    expectSubsetOfReference(dir.path());
    EXPECT_EQ(dirDigest(dir.path()).size(), 1u);
}

/** A worker that dies mid-unit: the unit is re-queued, the slot is
 * revived, and the campaign still completes byte-identically. */
TEST(DistribFaults, WorkerDeathRequeuesUnit)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    const std::vector<corpus::CorpusShader> one{shaders[3]};
    const std::string good = validUnitBytes(shaders[3]);

    ScratchDir dir("death");
    FakeTransport fake(1);
    int deliveries = 0;
    fake.onAssign = [&](unsigned w, const distrib::WireUnit &u) {
        deliveries++;
        if (deliveries == 1) {
            fake.liveFlags[w] = false;
            fake.pushDeath(w);
        } else {
            fake.pushResult(w, u.id, good);
        }
    };
    distrib::Options opts;
    opts.workers = 1;
    distrib::CampaignCoordinator coord(one, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run(fake);
    EXPECT_TRUE(h.healthy()) << h.summary();
    EXPECT_EQ(h.unitsRequeued, 1u);
    EXPECT_GE(h.workersRestarted, 1u);
    EXPECT_EQ(dirDigest(dir.path()).size(), 1u);
    expectSubsetOfReference(dir.path());
}

/** A silent worker (no result, no heartbeat) trips its lease: the
 * worker is reaped and the unit handed to a replacement. */
TEST(DistribFaults, LeaseExpiryReapsSilentWorker)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    const std::vector<corpus::CorpusShader> one{shaders[0]};
    const std::string good = validUnitBytes(shaders[0]);

    ScratchDir dir("lease");
    FakeTransport fake(1);
    int deliveries = 0;
    fake.onAssign = [&](unsigned w, const distrib::WireUnit &u) {
        deliveries++;
        if (deliveries == 1)
            return; // silence: no result, no heartbeat
        fake.pushResult(w, u.id, good);
    };
    distrib::Options opts;
    opts.workers = 1;
    opts.leaseMs = 60;
    distrib::CampaignCoordinator coord(one, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run(fake);
    EXPECT_TRUE(h.healthy()) << h.summary();
    EXPECT_GE(h.leaseExpiries, 1u);
    EXPECT_EQ(fake.reaps, 1);
    EXPECT_EQ(h.unitsCompleted, 1u);
    expectSubsetOfReference(dir.path());
}

/** A unit that fails every assignment is quarantined after the bound,
 * and the campaign completes on the partial results — the healthy
 * units' shards are all published and correct. */
TEST(DistribFaults, PoisonUnitQuarantinedCampaignCompletes)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    ScratchDir dir("poison");
    FakeTransport fake(2);
    const std::string poison = shaders[1].name;
    fake.onAssign = [&](unsigned w, const distrib::WireUnit &u) {
        if (u.shader.name == poison)
            fake.pushError(w, u.id, "injected poison unit");
        else
            fake.pushResult(w, u.id, validUnitBytes(u.shader));
    };
    distrib::Options opts;
    opts.workers = 2;
    opts.maxAssignments = 3;
    distrib::CampaignCoordinator coord(shaders, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run(fake);
    EXPECT_FALSE(h.healthy());
    ASSERT_EQ(h.quarantined.size(), 1u);
    EXPECT_EQ(h.quarantined[0].shader, poison);
    EXPECT_EQ(h.quarantined[0].assignments, 3);
    EXPECT_EQ(h.unitsCompleted, shaders.size() - 1);
    expectSubsetOfReference(dir.path());
    EXPECT_EQ(dirDigest(dir.path()).size(), shaders.size() - 1);
}

/** GSOPT_STRICT=1 turns the first quarantine into a thrown error. */
TEST(DistribFaults, StrictModeFailsFastOnQuarantine)
{
    auto quiet = quiesce();
    ScopedEnv strict("GSOPT_STRICT", "1");
    const auto shaders = miniCorpus();
    const std::vector<corpus::CorpusShader> one{shaders[2]};
    ScratchDir dir("strict");
    FakeTransport fake(1);
    fake.onAssign = [&](unsigned w, const distrib::WireUnit &u) {
        fake.pushError(w, u.id, "injected poison unit");
    };
    distrib::Options opts;
    opts.workers = 1;
    opts.maxAssignments = 2;
    distrib::CampaignCoordinator coord(one, dir.path(), opts);
    EXPECT_THROW(coord.run(fake), std::runtime_error);
}

/** Every slot dead and unrevivable: the coordinator must terminate
 * (quarantining what it could not place), not spin. */
TEST(DistribFaults, NoLiveWorkersTerminates)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    ScratchDir dir("dead_pool");
    FakeTransport fake(2);
    fake.liveFlags[0] = fake.liveFlags[1] = false;
    fake.reviveFails = true;
    distrib::Options opts;
    opts.workers = 2;
    distrib::CampaignCoordinator coord(shaders, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run(fake);
    EXPECT_FALSE(h.healthy());
    EXPECT_EQ(h.quarantined.size(), shaders.size());
    EXPECT_TRUE(dirDigest(dir.path()).empty());
}

/** In-process workers cannot heartbeat, so a stalled unit trips the
 * lease for real; its late (stale) delivery is still merged or
 * discarded safely, never corrupted. */
TEST(DistribFaults, StalledInProcessUnitExpiresAndRecovers)
{
    const auto shaders = miniCorpus();
    const std::vector<corpus::CorpusShader> one{shaders[0]};
    ScratchDir dir("stall");
    fault::ScopedFaultPlan plan(
        fault::FaultPlan::parse("worker.item:1.0:21:stall"));
    distrib::Options opts;
    opts.workers = 1;
    opts.leaseMs = 80;
    opts.maxAssignments = 50; // stalls keep completing eventually
    distrib::CampaignCoordinator coord(one, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run();
    EXPECT_GE(h.leaseExpiries, 1u);
    EXPECT_EQ(dirDigest(dir.path()).size(), h.healthy() ? 1u : 0u);
    {
        auto quiet = quiesce();
        expectSubsetOfReference(dir.path());
    }
}

// ------------------------------------------- subprocess fault shapes

/** Deterministic worker kill mid-unit at the transport level: assign,
 * SIGKILL via reap(), revive, reassign — the replacement worker must
 * deliver the exact bytes. */
TEST(DistribSubprocess, KilledWorkerRevivesAndDelivers)
{
    auto quiet = quiesce();
    const auto shaders = miniCorpus();
    const corpus::CorpusShader &shader = shaders[0];
    const uint64_t key =
        tuner::shardKey(shader, tuner::deviceSetKey());

    auto transport = distrib::makeSubprocessTransport(1);
    distrib::WireUnit unit;
    unit.id = 7;
    unit.key = key;
    unit.heartbeatMs = 50;
    unit.shader = shader;

    ASSERT_TRUE(transport->assign(0, unit));
    transport->reap(0); // SIGKILL mid-unit
    EXPECT_FALSE(transport->live(0));
    ASSERT_TRUE(transport->revive(0));
    ASSERT_TRUE(transport->assign(0, unit));

    const std::string expected = validUnitBytes(shader);
    bool delivered = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        distrib::TransportEvent ev = transport->poll(100);
        if (ev.kind == distrib::TransportEvent::Kind::Result) {
            EXPECT_EQ(ev.unit, 7u);
            EXPECT_EQ(md5Hex(ev.bytes), md5Hex(expected));
            delivered = true;
            break;
        }
        ASSERT_NE(ev.kind, distrib::TransportEvent::Kind::WorkerDied);
    }
    EXPECT_TRUE(delivered);
    transport->shutdown();
}

/** Randomized fault torture over the real transports: ipc tears and
 * failures, shard-write tears, worker faults. Whatever completes must
 * be byte-identical to the reference; a quiesced re-run over the same
 * directory finishes the job and converges to full equality. */
TEST(DistribFaults, TortureConvergesToReferenceBytes)
{
    const auto shaders = miniCorpus();
    const int iters = tortureIters();
    for (int iter = 0; iter < iters; ++iter) {
        ScratchDir dir("torture_" + std::to_string(iter));
        Rng rng(0x7011e7 + iter);
        const std::string spec =
            "ipc.send:0.12:" + std::to_string(rng.below(1000)) +
            ":tear,ipc.recv:0.10:" +
            std::to_string(rng.below(1000)) +
            ",shard.write:0.20:" + std::to_string(rng.below(1000)) +
            ":tear,worker.item:0.08:" +
            std::to_string(rng.below(1000));
        {
            fault::ScopedFaultPlan plan(fault::FaultPlan::parse(spec));
            distrib::Options opts;
            opts.workers = 3;
            opts.maxAssignments = 6;
            opts.scheduleSeed = 0x7357 + iter;
            distrib::CampaignCoordinator coord(shaders, dir.path(),
                                               opts);
            const distrib::DistribHealth &h = coord.run();
            EXPECT_EQ(h.unitsCompleted + h.unitsFromCache +
                          h.quarantined.size(),
                      h.unitsTotal)
                << h.summary();
        }
        auto quiet = quiesce();
        expectSubsetOfReference(dir.path());
        // Converge: a fault-free resume completes the remainder.
        distrib::Options opts;
        opts.workers = 2;
        distrib::CampaignCoordinator coord(shaders, dir.path(), opts);
        const distrib::DistribHealth &h = coord.run();
        EXPECT_TRUE(h.healthy()) << h.summary();
        EXPECT_EQ(dirDigest(dir.path()), referenceDigest())
            << "iter " << iter << " plan " << spec;
    }
}

/** Subprocess workers under an inherited fault plan (children parse
 * GSOPT_FAULTS at startup; the parent set it only for them): worker
 * deaths and torn sends must never corrupt the merged directory. */
TEST(DistribSubprocess, ChildFaultPlanNeverCorruptsMergedDir)
{
    auto quiet = quiesce(); // parent side stays clean
    const auto shaders = miniCorpus();
    ScratchDir dir("child_faults");
    ScopedEnv faults("GSOPT_FAULTS",
                     "ipc.send:0.05:41:tear,worker.item:0.10:43");
    distrib::Options opts;
    opts.workers = 2;
    opts.transport = distrib::TransportKind::Subprocess;
    opts.maxAssignments = 8;
    distrib::CampaignCoordinator coord(shaders, dir.path(), opts);
    const distrib::DistribHealth &h = coord.run();
    EXPECT_EQ(h.unitsCompleted + h.unitsFromCache +
                  h.quarantined.size(),
              h.unitsTotal)
        << h.summary();
    expectSubsetOfReference(dir.path());
    if (h.healthy()) {
        EXPECT_EQ(dirDigest(dir.path()), referenceDigest());
    }
}

} // namespace
} // namespace gsopt

/** This binary is re-executed as its own worker pool: divert into the
 * worker loop before gtest parses anything. */
int
main(int argc, char **argv)
{
    if (gsopt::tuner::distrib::maybeRunWorker())
        return 0;
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
