/**
 * @file
 * Campaign-shard byte-identity golden. The arena/memoization refactor
 * must not change a single byte of campaign output: this runs the real
 * engine (simulated devices, deterministic measurement protocol) over
 * three corpus shaders spanning the families and md5s each shard body
 * against values captured from the pre-refactor build (schema 14).
 *
 * If a change legitimately alters campaign output, it must bump the
 * engine schema version — and then recapture these constants from a
 * build whose correctness was established some other way.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "test_md5.h"
#include "tuner/experiment.h"

namespace gsopt {
namespace {

using testutil::md5Hex;

TEST(Md5Self, Rfc1321Vectors)
{
    EXPECT_EQ(md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5Hex("message digest"),
              "f96b697d7cb7938d525a2f31aaf161d0");
}

// ----------------------------------------------- campaign goldens

struct Golden
{
    const char *shader;
    size_t bodyBytes;
    const char *md5;
};

/** Captured from the pre-arena seed build (commit 6f21584, schema 14),
 * single-threaded campaign over exactly these three shaders. */
const Golden kGoldens[] = {
    {"blur/weighted9", 19413, "9fa1bcff99cc1aa4f9a65bf8e72aa063"},
    {"tonemap/aces", 9374, "6c424f2e6d95d3dfab163937fabc3406"},
    {"uber/car_chase", 140942, "488aadc9b1001669f2cc597613f0ccbd"},
};

TEST(ShardGolden, ThreeShaderCampaignBytesMatchSeed)
{
    if (tuner::flagCount() != 8)
        GTEST_SKIP() << "md5 pins cover the paper's 8-pass campaign; "
                        "GSOPT_EXTRA_PASSES changes the bytes";
    std::vector<corpus::CorpusShader> shaders;
    for (const Golden &g : kGoldens)
        shaders.push_back(*corpus::findShader(g.shader));
    tuner::ExperimentEngine engine(shaders, /*threads=*/1);
    ASSERT_EQ(engine.results().size(), std::size(kGoldens));

    for (const Golden &g : kGoldens) {
        const tuner::ShaderResult &r = engine.result(g.shader);
        const std::string body = tuner::serializeShardBody(r);
        EXPECT_EQ(body.size(), g.bodyBytes) << g.shader;
        EXPECT_EQ(md5Hex(body), g.md5) << g.shader;
    }
}

} // namespace
} // namespace gsopt
