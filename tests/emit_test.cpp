/**
 * @file
 * Tests for the GLSL back end: output is re-parseable by our own front
 * end, deterministic, semantically equivalent to the IR it came from,
 * and stable under a second round trip.
 */
#include <gtest/gtest.h>

#include "emit/emit.h"
#include "emit/offline.h"
#include "ir/interp.h"
#include "ir/verifier.h"
#include "passes/passes.h"

namespace gsopt {
namespace {

using passes::OptFlags;

const char *kShaders[] = {
    R"(
        out vec4 fragColor;
        in vec2 uv;
        uniform sampler2D tex;
        uniform vec4 ambient;
        void main() {
            float weightTotal = 0.0;
            fragColor = vec4(0.0);
            for (int i = 0; i < 9; i++) {
                weightTotal += 0.1;
                fragColor += texture(tex, uv) * 3.0 * ambient;
            }
            fragColor /= weightTotal;
        }
    )",
    R"(
        in vec2 uv;
        in float t;
        out vec4 c;
        void main() {
            vec4 v = vec4(0.0);
            v.x = uv.x;
            v.y = uv.y;
            if (t > 0.5) { v.z = 1.0; } else { v.z = t * 2.0; }
            v.w = 1.0;
            c = v;
        }
    )",
    R"(
        uniform mat4 mvp;
        in vec2 uv;
        out vec4 c;
        void main() {
            c = mvp * vec4(uv, 0.0, 1.0);
        }
    )",
    R"(
        uniform int n;
        in float x;
        out float c;
        void main() {
            float s = x;
            for (int i = 0; i < n; i++) { s = s * 0.5 + 0.1; }
            c = s;
        }
    )",
};

std::vector<ir::InterpEnv>
probeEnvs()
{
    std::vector<ir::InterpEnv> envs;
    for (double a : {0.2, 0.8}) {
        ir::InterpEnv env;
        env.inputs["uv"] = {a, 1.0 - a};
        env.inputs["t"] = {a};
        env.inputs["x"] = {a};
        env.uniforms["ambient"] = {0.5, 0.6, 0.7, 1.0};
        env.uniforms["n"] = {3.0};
        env.uniforms["mvp"] = {1, 0, 0, 0, 0, 2, 0, 0,
                               0, 0, 1, 0, 0, 0, 0, 1};
        envs.push_back(std::move(env));
    }
    return envs;
}

void
expectSameOutputs(const ir::Module &a, const ir::Module &b)
{
    for (const auto &env : probeEnvs()) {
        auto ra = ir::interpret(a, env);
        auto rb = ir::interpret(b, env);
        ASSERT_EQ(ra.outputs.size(), rb.outputs.size());
        for (const auto &[name, lanes] : ra.outputs) {
            const auto &other = rb.outputs.at(name);
            ASSERT_EQ(lanes.size(), other.size());
            for (size_t k = 0; k < lanes.size(); ++k)
                EXPECT_NEAR(lanes[k], other[k], 1e-9) << name;
        }
    }
}

TEST(Emit, OutputReparses)
{
    for (const char *src : kShaders) {
        auto m = emit::compileToIr(src);
        std::string text = emit::emitGlsl(*m);
        // The driver-JIT path: our own front end must accept it.
        auto m2 = emit::compileToIr(text);
        EXPECT_TRUE(ir::verify(*m2).empty()) << text;
    }
}

TEST(Emit, RoundTripPreservesSemantics)
{
    for (const char *src : kShaders) {
        auto m = emit::compileToIr(src);
        std::string text = emit::emitGlsl(*m);
        auto m2 = emit::compileToIr(text);
        expectSameOutputs(*m, *m2);
    }
}

TEST(Emit, OptimizedRoundTripPreservesSemantics)
{
    for (const char *src : kShaders) {
        auto reference = emit::compileToIr(src);
        for (OptFlags flags :
             {OptFlags::none(), OptFlags::lunarGlassDefaults(),
              OptFlags::all()}) {
            std::string text = emit::optimizeShaderSource(src, flags);
            auto m2 = emit::compileToIr(text);
            expectSameOutputs(*reference, *m2);
        }
    }
}

TEST(Emit, Deterministic)
{
    for (const char *src : kShaders) {
        std::string a =
            emit::optimizeShaderSource(src, OptFlags::all());
        std::string b =
            emit::optimizeShaderSource(src, OptFlags::all());
        EXPECT_EQ(a, b);
    }
}

TEST(Emit, SecondRoundTripIsStable)
{
    // Emission reaches a textual fixpoint after at most one round trip
    // (generic while-loops normalise on the first re-parse; everything
    // else is stable immediately). Within the experiments all variants
    // are produced by a single pipeline application, so dedup by text
    // is sound either way — this test pins the convergence behaviour.
    for (const char *src : kShaders) {
        std::string once =
            emit::optimizeShaderSource(src, OptFlags::none());
        std::string twice =
            emit::optimizeShaderSource(once, OptFlags::none());
        std::string thrice =
            emit::optimizeShaderSource(twice, OptFlags::none());
        EXPECT_EQ(twice, thrice) << src;
    }
}

TEST(Emit, KeepsInterfaceDeclarations)
{
    auto m = emit::compileToIr(kShaders[0]);
    passes::optimize(*m, OptFlags::all());
    std::string text = emit::emitGlsl(*m);
    EXPECT_NE(text.find("uniform sampler2D tex;"), std::string::npos);
    EXPECT_NE(text.find("uniform vec4 ambient;"), std::string::npos);
    EXPECT_NE(text.find("out vec4 fragColor;"), std::string::npos);
    EXPECT_NE(text.find("in vec2 uv;"), std::string::npos);
}

TEST(Emit, UnrolledShaderHasNoLoops)
{
    auto flags = OptFlags::none();
    flags.unroll = true;
    std::string text =
        emit::optimizeShaderSource(kShaders[0], flags);
    EXPECT_EQ(text.find("for ("), std::string::npos);
    EXPECT_EQ(text.find("while ("), std::string::npos);
}

TEST(Emit, DynamicLoopEmitsWhile)
{
    std::string text =
        emit::optimizeShaderSource(kShaders[3], OptFlags::none());
    EXPECT_NE(text.find("while ("), std::string::npos);
    // And it must re-parse + keep meaning.
    auto m1 = emit::compileToIr(kShaders[3]);
    auto m2 = emit::compileToIr(text);
    expectSameOutputs(*m1, *m2);
}

TEST(Emit, UniqueVariantsDedupByText)
{
    // Flag combos that do nothing must produce byte-identical text.
    auto base = emit::optimizeShaderSource(kShaders[2],
                                           OptFlags::none());
    auto unrolled = [&] {
        OptFlags f;
        f.unroll = true; // no loops in shader 2: no effect
        return emit::optimizeShaderSource(kShaders[2], f);
    }();
    EXPECT_EQ(base, unrolled);
}

} // namespace
} // namespace gsopt
