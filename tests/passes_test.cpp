/**
 * @file
 * Unit tests for the optimization passes, plus the interpreter-backed
 * equivalence property: every flag combination must preserve shader
 * semantics on a battery of inputs.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "emit/offline.h"
#include "ir/interp.h"
#include "ir/verifier.h"
#include "ir/walk.h"
#include "passes/passes.h"
#include "passes/registry.h"

namespace gsopt {
namespace {

using ir::InterpEnv;
using passes::OptFlags;

std::unique_ptr<ir::Module>
build(const std::string &src)
{
    return emit::compileToIr(src);
}

size_t
countOps(const ir::Module &m, ir::Opcode op)
{
    size_t n = 0;
    ir::forEachInstr(m.body, [&](const ir::Instr &i) { n += i.op == op; });
    return n;
}

size_t
loopCount(const ir::Module &m)
{
    size_t n = 0;
    ir::forEachNode(const_cast<ir::Module &>(m).body,
                    [&](ir::Node &node) {
                        n += node.kind() == ir::NodeKind::Loop;
                    });
    return n;
}

size_t
ifCount(const ir::Module &m)
{
    size_t n = 0;
    ir::forEachNode(const_cast<ir::Module &>(m).body,
                    [&](ir::Node &node) {
                        n += node.kind() == ir::NodeKind::If;
                    });
    return n;
}

// --------------------------------------------------------- canonicalize

TEST(Canonicalize, FoldsConstantExpressions)
{
    auto m = build("out float c; void main() { c = 2.0 * 3.0 + "
                   "sqrt(16.0); }");
    passes::canonicalize(*m);
    // Single store of a single constant.
    EXPECT_EQ(m->instructionCount(), 2u);
    EXPECT_DOUBLE_EQ(ir::interpret(*m, {}).outputs.at("c")[0], 10.0);
}

TEST(Canonicalize, ForwardsStoresToLoads)
{
    auto m = build(R"(
        in float x;
        out float c;
        void main() {
            float a = x * 2.0;
            float b = a;
            c = b;
        }
    )");
    passes::canonicalize(*m);
    // After forwarding + DCE: load x, const, mul, store c.
    EXPECT_LE(m->instructionCount(), 4u);
    EXPECT_EQ(countOps(*m, ir::Opcode::StoreVar), 1u);
}

TEST(Canonicalize, LocalCseRemovesDuplicates)
{
    auto m = build(R"(
        in vec2 uv;
        out vec4 c;
        void main() {
            float a = uv.x * uv.y;
            float b = uv.x * uv.y;
            c = vec4(a + b);
        }
    )");
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 1u);
}

TEST(Canonicalize, RemovesDeadCode)
{
    auto m = build(R"(
        in float x;
        out float c;
        void main() {
            float unused = sin(x) * cos(x);
            c = x;
        }
    )");
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Sin), 0u);
    EXPECT_EQ(countOps(*m, ir::Opcode::Cos), 0u);
}

TEST(Canonicalize, FoldsConstantIf)
{
    auto m = build(R"(
        in float x;
        out float c;
        void main() {
            if (2.0 > 1.0) { c = x; } else { c = -x; }
        }
    )");
    passes::canonicalize(*m);
    EXPECT_EQ(ifCount(*m), 0u);
    InterpEnv env;
    env.inputs["x"] = {3.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 3.0);
}

TEST(Canonicalize, FoldsConstArrayIndexing)
{
    auto m = build(R"(
        out float c;
        const float w[3] = float[](1.0, 2.0, 4.0);
        void main() { c = w[0] + w[2]; }
    )");
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::LoadElem), 0u);
    EXPECT_DOUBLE_EQ(ir::interpret(*m, {}).outputs.at("c")[0], 5.0);
}

TEST(Canonicalize, DoesNotRemoveIdentityMultiply)
{
    // x*1 removal belongs to the FP-reassociation *flag*, not the
    // always-on canonicaliser (flags must keep their measurable effect).
    auto m = build("in float x; out float c; void main() { c = x * "
                   "1.0; }");
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 1u);
}

// --------------------------------------------------------------- unroll

TEST(Unroll, FullyUnrollsCanonicalLoop)
{
    auto m = build(R"(
        out float c;
        uniform float u;
        void main() {
            float s = 0.0;
            for (int i = 0; i < 4; i++) { s += u * float(i); }
            c = s;
        }
    )");
    passes::canonicalize(*m);
    ASSERT_EQ(loopCount(*m), 1u);
    EXPECT_TRUE(passes::unroll(*m));
    EXPECT_EQ(loopCount(*m), 0u);
    passes::canonicalize(*m);
    InterpEnv env;
    env.uniforms["u"] = {2.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0],
                     2.0 * (0 + 1 + 2 + 3));
}

TEST(Unroll, NestedLoopsFlattenCompletely)
{
    auto m = build(R"(
        out float c;
        void main() {
            float s = 0.0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 2; j++) { s += 1.0; }
            }
            c = s;
        }
    )");
    passes::unroll(*m);
    EXPECT_EQ(loopCount(*m), 0u);
    passes::canonicalize(*m);
    EXPECT_DOUBLE_EQ(ir::interpret(*m, {}).outputs.at("c")[0], 6.0);
}

TEST(Unroll, LeavesDynamicLoops)
{
    auto m = build(R"(
        uniform int n;
        out float c;
        void main() {
            float s = 0.0;
            for (int i = 0; i < n; i++) { s += 1.0; }
            c = s;
        }
    )");
    EXPECT_FALSE(passes::unroll(*m));
    EXPECT_EQ(loopCount(*m), 1u);
}

TEST(Unroll, EnablesConstantWeightFolding)
{
    // The motivating-example mechanism: after unrolling, the const
    // weight table indexes become literals and fold to constants.
    auto m = build(R"(
        out float c;
        const float w[3] = float[](0.25, 0.5, 0.25);
        void main() {
            float total = 0.0;
            for (int i = 0; i < 3; i++) { total += w[i]; }
            c = total;
        }
    )");
    passes::unroll(*m);
    passes::canonicalize(*m);
    // total is now a compile-time 1.0: only the store remains.
    EXPECT_EQ(m->instructionCount(), 2u);
}

// ---------------------------------------------------------------- hoist

TEST(Hoist, FlattensAssignmentsToSelects)
{
    auto m = build(R"(
        in float x;
        out float c;
        void main() {
            float r = 0.0;
            if (x > 0.5) { r = x * 2.0; } else { r = x * 3.0; }
            c = r;
        }
    )");
    passes::canonicalize(*m);
    ASSERT_EQ(ifCount(*m), 1u);
    EXPECT_TRUE(passes::hoist(*m));
    EXPECT_EQ(ifCount(*m), 0u);
    EXPECT_GE(countOps(*m, ir::Opcode::Select), 1u);
    for (double x : {0.2, 0.7}) {
        InterpEnv env;
        env.inputs["x"] = {x};
        double expect = x > 0.5 ? x * 2.0 : x * 3.0;
        EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0],
                         expect);
    }
}

TEST(Hoist, OneArmedIfUsesPreValue)
{
    auto m = build(R"(
        in float x;
        out float c;
        void main() {
            float r = 7.0;
            if (x > 0.5) { r = 1.0; }
            c = r;
        }
    )");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::hoist(*m));
    EXPECT_EQ(ifCount(*m), 0u);
    InterpEnv env;
    env.inputs["x"] = {0.1};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 7.0);
    env.inputs["x"] = {0.9};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 1.0);
}

TEST(Hoist, RefusesTextureAndDiscard)
{
    auto m = build(R"(
        uniform sampler2D t;
        in vec2 uv;
        in float x;
        out vec4 c;
        void main() {
            vec4 r = vec4(0.0);
            if (x > 0.5) { r = texture(t, uv); }
            if (x > 0.9) { discard; }
            c = r;
        }
    )");
    passes::canonicalize(*m);
    passes::hoist(*m);
    EXPECT_EQ(ifCount(*m), 2u); // neither if may be flattened
}

TEST(Hoist, NestedIfsFlattenBottomUp)
{
    auto m = build(R"(
        in float x;
        out float c;
        void main() {
            float r = 0.0;
            if (x > 0.25) {
                r = 1.0;
                if (x > 0.75) { r = 2.0; }
            }
            c = r;
        }
    )");
    passes::canonicalize(*m);
    passes::hoist(*m);
    EXPECT_EQ(ifCount(*m), 0u);
    for (double x : {0.1, 0.5, 0.9}) {
        InterpEnv env;
        env.inputs["x"] = {x};
        double expect = x > 0.25 ? (x > 0.75 ? 2.0 : 1.0) : 0.0;
        EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0],
                         expect)
            << x;
    }
}

// ------------------------------------------------------------- coalesce

TEST(Coalesce, InsertChainBecomesConstruct)
{
    auto m = build(R"(
        in float a;
        out vec4 c;
        void main() {
            vec4 v;
            v.x = a;
            v.y = a * 2.0;
            v.z = a * 3.0;
            v.w = 1.0;
            c = v;
        }
    )");
    passes::canonicalize(*m);
    ASSERT_GE(countOps(*m, ir::Opcode::Insert), 3u);
    EXPECT_TRUE(passes::coalesce(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Insert), 0u);
    InterpEnv env;
    env.inputs["a"] = {2.0};
    auto out = ir::interpret(*m, env).outputs.at("c");
    EXPECT_DOUBLE_EQ(out[2], 6.0);
    EXPECT_DOUBLE_EQ(out[3], 1.0);
}

TEST(Coalesce, ConstructOfExtractsBecomesSwizzle)
{
    auto m = build(R"(
        in vec4 v;
        out vec4 c;
        void main() {
            c = vec4(v.w, v.z, v.y, v.x);
        }
    )");
    passes::canonicalize(*m);
    passes::coalesce(*m);
    EXPECT_GE(countOps(*m, ir::Opcode::Swizzle), 1u);
    EXPECT_EQ(countOps(*m, ir::Opcode::Construct), 0u);
}

// ------------------------------------------------------------------ gvn

TEST(Gvn, EliminatesRedundancyAcrossBranches)
{
    auto m = build(R"(
        in float x;
        in float y;
        out float c;
        void main() {
            float common = x * y + 1.0;
            float r = 0.0;
            if (x > 0.5) {
                r = (x * y + 1.0) * 2.0;
            } else {
                r = (x * y + 1.0) * 3.0;
            }
            c = r + common;
        }
    )");
    passes::canonicalize(*m);
    size_t before = countOps(*m, ir::Opcode::Mul);
    EXPECT_TRUE(passes::gvn(*m));
    passes::canonicalize(*m);
    EXPECT_LT(countOps(*m, ir::Opcode::Mul), before);
    InterpEnv env;
    env.inputs["x"] = {0.8};
    env.inputs["y"] = {0.5};
    double common = 0.8 * 0.5 + 1.0;
    EXPECT_NEAR(ir::interpret(*m, env).outputs.at("c")[0],
                common * 2.0 + common, 1e-12);
}

TEST(Gvn, RespectsMemoryVersions)
{
    auto m = build(R"(
        in float x;
        out float c;
        void main() {
            float a = x;
            float first = a * 2.0;
            a = a + 1.0;
            float second = a * 2.0;
            c = first + second;
        }
    )");
    passes::gvn(*m); // must NOT merge first and second
    passes::canonicalize(*m);
    InterpEnv env;
    env.inputs["x"] = {1.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0],
                     2.0 + 4.0);
}

// ------------------------------------------------------------ reassociate

TEST(Reassociate, FoldsIntChains)
{
    auto m = build(R"(
        uniform int k;
        out float c;
        void main() {
            int a = k + 2 + 3 + 4;
            c = float(a);
        }
    )");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::reassociate(*m));
    passes::canonicalize(*m);
    // k + 9: exactly one integer add remains.
    size_t int_adds = 0;
    ir::forEachInstr(m->body, [&](const ir::Instr &i) {
        int_adds += i.op == ir::Opcode::Add && i.type.isInt();
    });
    EXPECT_EQ(int_adds, 1u);
    InterpEnv env;
    env.uniforms["k"] = {5.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 14.0);
}

TEST(Reassociate, RemovesFloatAddZero)
{
    auto m = build("in float x; out float c; void main() { c = x + "
                   "0.0; }");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::reassociate(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Add), 0u);
}

// --------------------------------------------------------- fpReassociate

TEST(FpReassociate, FactorsCommonMultiplier)
{
    auto m = build(R"(
        in vec4 a;
        in vec4 b;
        in vec4 k;
        out vec4 c;
        void main() { c = a * k + b * k; }
    )");
    passes::canonicalize(*m);
    size_t before = countOps(*m, ir::Opcode::Mul);
    ASSERT_EQ(before, 2u);
    EXPECT_TRUE(passes::fpReassociate(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 1u); // k*(a+b)
    InterpEnv env;
    env.inputs["a"] = {1.0, 1.0, 1.0, 1.0};
    env.inputs["b"] = {2.0, 2.0, 2.0, 2.0};
    env.inputs["k"] = {3.0, 3.0, 3.0, 3.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 9.0);
}

TEST(FpReassociate, CancelsAddSub)
{
    auto m = build("in float a; in float b; out float c; void main() "
                   "{ c = a + b - a; }");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::fpReassociate(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Add), 0u);
    EXPECT_EQ(countOps(*m, ir::Opcode::Sub), 0u);
    InterpEnv env;
    env.inputs["a"] = {123.0};
    env.inputs["b"] = {7.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 7.0);
}

TEST(FpReassociate, TriplesBecomeMultiply)
{
    auto m = build("in float a; out float c; void main() { c = a + a "
                   "+ a; }");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::fpReassociate(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Add), 0u);
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 1u);
    InterpEnv env;
    env.inputs["a"] = {2.5};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 7.5);
}

TEST(FpReassociate, GroupsScalarsBeforeVectors)
{
    // f1*(f2*v) -> (f1*f2)*v: one vector multiply instead of two.
    auto m = build(R"(
        in float f1;
        in float f2;
        in vec4 v;
        out vec4 c;
        void main() { c = f1 * (f2 * v); }
    )");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::fpReassociate(*m));
    passes::canonicalize(*m);
    size_t vec_muls = 0, scalar_muls = 0;
    ir::forEachInstr(m->body, [&](const ir::Instr &i) {
        if (i.op == ir::Opcode::Mul) {
            if (i.type.isVector())
                ++vec_muls;
            else
                ++scalar_muls;
        }
    });
    EXPECT_EQ(vec_muls, 1u);
    EXPECT_EQ(scalar_muls, 1u);
}

TEST(FpReassociate, GroupsConstants)
{
    // 3.0*(0.5*v) -> 1.5*v with the constant folded at compile time.
    auto m = build(R"(
        in vec4 v;
        out vec4 c;
        void main() { c = 3.0 * (0.5 * v); }
    )");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::fpReassociate(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 1u);
    InterpEnv env;
    env.inputs["v"] = {2.0, 2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 3.0);
}

TEST(FpReassociate, RemovesMultiplyByOne)
{
    auto m = build("in vec4 v; out vec4 c; void main() { c = v * 1.0; "
                   "}");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::fpReassociate(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 0u);
}

// --------------------------------------------------------------- divToMul

TEST(DivToMul, ConstantDivisorBecomesMultiply)
{
    auto m = build("in vec4 v; out vec4 c; void main() { c = v / 4.0; "
                   "}");
    passes::canonicalize(*m);
    EXPECT_TRUE(passes::divToMul(*m));
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Div), 0u);
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 1u);
    InterpEnv env;
    env.inputs["v"] = {8.0, 8.0, 8.0, 8.0};
    EXPECT_DOUBLE_EQ(ir::interpret(*m, env).outputs.at("c")[0], 2.0);
}

TEST(DivToMul, LeavesDynamicDivisor)
{
    auto m = build("in vec4 v; in float d; out vec4 c; void main() { "
                   "c = v / d; }");
    passes::canonicalize(*m);
    EXPECT_FALSE(passes::divToMul(*m));
    EXPECT_EQ(countOps(*m, ir::Opcode::Div), 1u);
}

// ------------------------------------------------------------------ adce

TEST(Adce, IsNoOpAfterCanonicalize)
{
    // The paper's observation VI-D1: ADCE never changes the output once
    // trivially dead code is gone.
    const char *sources[] = {
        "in float x; out float c; void main() { float dead = sin(x); "
        "c = x; }",
        R"(
            in vec2 uv; uniform sampler2D t; out vec4 c;
            void main() {
                vec4 a = texture(t, uv);
                float unused = dot(a.rgb, vec3(1.0));
                c = a;
            }
        )",
        R"(
            in float x; out float c;
            void main() {
                float s = 0.0;
                for (int i = 0; i < 4; i++) { s += x; }
                c = s;
            }
        )",
    };
    for (const char *src : sources) {
        auto m = build(src);
        passes::canonicalize(*m);
        EXPECT_FALSE(passes::adce(*m)) << src;
    }
}

TEST(Adce, AloneRemovesDeadCode)
{
    // Without canonicalisation first, ADCE does remove dead code (it is
    // a real implementation, not a stub).
    auto m = build("in float x; out float c; void main() { float dead "
                   "= sin(x); c = x; }");
    EXPECT_TRUE(passes::adce(*m));
    EXPECT_EQ(countOps(*m, ir::Opcode::Sin), 0u);
}

// ----------------------------------------------- pipeline equivalence

/** Shaders exercising every pass interaction. */
const char *kEquivalenceShaders[] = {
    // Blur-like loop with const weights (the motivating example shape).
    R"(
        out vec4 fragColor;
        in vec2 uv;
        uniform sampler2D tex;
        uniform vec4 ambient;
        const vec4 weights[5] = vec4[](vec4(0.1), vec4(0.2), vec4(0.4),
                                       vec4(0.2), vec4(0.1));
        const vec2 offsets[5] = vec2[](vec2(-0.02), vec2(-0.01),
                                       vec2(0.0), vec2(0.01),
                                       vec2(0.02));
        void main() {
            float weightTotal = 0.0;
            fragColor = vec4(0.0);
            for (int i = 0; i < 5; i++) {
                weightTotal += weights[i][0];
                fragColor += weights[i] *
                             texture(tex, uv + offsets[i]) * 3.0 *
                             ambient;
            }
            fragColor /= weightTotal;
        }
    )",
    // Branchy lighting with reuse across branches.
    R"(
        in vec3 normal;
        in vec3 lightDir;
        in float gloss;
        out vec4 color;
        void main() {
            float nl = dot(normalize(normal), normalize(lightDir));
            float d = max(nl, 0.0);
            vec3 base = vec3(0.2, 0.3, 0.4);
            if (gloss > 0.5) {
                base = base * d + vec3(pow(d, 8.0));
            } else {
                base = base * d;
            }
            color = vec4(base, 1.0);
        }
    )",
    // Integer indexing, swizzle stores, ternaries.
    R"(
        in vec2 uv;
        out vec4 c;
        void main() {
            vec4 v = vec4(0.0);
            v.x = uv.x > 0.5 ? uv.y : 1.0 - uv.y;
            v.yz = uv * 2.0;
            v.w = 1.0;
            int k = 3;
            c = v * float(k + 1 + 0);
        }
    )",
    // Matrices + functions.
    R"(
        uniform mat3 rot;
        in vec3 p;
        out vec4 c;
        vec3 apply(vec3 v) { return rot * v; }
        void main() {
            vec3 q = apply(p) + apply(vec3(1.0, 0.0, 0.0));
            c = vec4(q, 1.0);
        }
    )",
    // Division-heavy, constant grouping opportunities.
    R"(
        in vec4 v;
        in float s;
        out vec4 c;
        void main() {
            vec4 a = v / 2.0;
            vec4 b = 4.0 * (0.25 * v);
            vec4 d = s * (2.0 * v);
            c = (a + b - a) + d / 8.0;
        }
    )",
    // Dynamic loop kept generic.
    R"(
        uniform int taps;
        in float x;
        out float c;
        void main() {
            float s = 0.0;
            for (int i = 0; i < taps; i++) { s = s * 0.5 + x; }
            c = s;
        }
    )",
};

class FlagEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(FlagEquivalence, AllFlagCombosPreserveSemantics)
{
    const int shader_idx = GetParam();
    const std::string src = kEquivalenceShaders[shader_idx];

    auto reference = build(src);
    passes::canonicalize(*reference);

    // Probe points: a few fragment positions and uniform settings.
    std::vector<InterpEnv> envs;
    for (double ux : {0.1, 0.6}) {
        for (double uy : {0.3, 0.9}) {
            InterpEnv env;
            env.inputs["uv"] = {ux, uy};
            env.inputs["x"] = {ux};
            env.inputs["p"] = {ux, uy, 0.5};
            env.inputs["normal"] = {0.3, 0.9, uy};
            env.inputs["lightDir"] = {ux, 0.5, 0.2};
            env.inputs["gloss"] = {uy};
            env.inputs["v"] = {ux, uy, 0.25, 1.0};
            env.inputs["s"] = {uy};
            env.uniforms["taps"] = {3.0};
            env.uniforms["ambient"] = {0.8, 0.7, 0.6, 1.0};
            env.uniforms["rot"] = {0.0, 1.0, 0.0, -1.0, 0.0,
                                   0.0, 0.0, 0.0, 1.0};
            envs.push_back(std::move(env));
        }
    }

    std::vector<ir::InterpResult> want;
    for (const auto &env : envs)
        want.push_back(ir::interpret(*reference, env));

    // Registry-sized, not the historical literal 256: a registered
    // extra pass widens this equivalence property automatically.
    const uint64_t combos =
        passes::PassRegistry::instance().comboCount();
    for (uint64_t bits = 0; bits < combos; ++bits) {
        const passes::OptFlags flags = passes::OptFlags::fromMask(bits);

        auto m = build(src);
        passes::optimize(*m, flags);

        for (size_t e = 0; e < envs.size(); ++e) {
            auto got = ir::interpret(*m, envs[e]);
            ASSERT_EQ(got.discarded, want[e].discarded);
            for (const auto &[name, lanes] : want[e].outputs) {
                const auto &g = got.outputs.at(name);
                ASSERT_EQ(g.size(), lanes.size());
                for (size_t k = 0; k < lanes.size(); ++k) {
                    EXPECT_NEAR(g[k], lanes[k],
                                1e-6 * (1.0 + std::fabs(lanes[k])))
                        << "shader " << shader_idx << " flags " << bits
                        << " output " << name << "[" << k << "]";
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllShaders, FlagEquivalence,
                         ::testing::Range(0, 6));

} // namespace
} // namespace gsopt
