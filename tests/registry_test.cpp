/**
 * @file
 * Pass-registry tests: built-in registration stays bit-compatible with
 * the paper's fixed table, the tree walk stays byte-identical to the
 * linear pipeline for every registered combination, cache keys hash
 * exact bit patterns, and — the headline decoupling property — a ninth
 * registered pass flows through pipeline, exploration, and the
 * experiment engine with no changes to any of them.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "corpus/corpus.h"
#include "emit/emit.h"
#include "emit/offline.h"
#include "passes/registry.h"
#include "tuner/experiment.h"
#include "tuner/explore.h"

namespace gsopt {
namespace {

using passes::PassRegistry;
using tuner::FlagSet;

TEST(Registry, BuiltinsMatchPaperBitOrder)
{
    PassRegistry &reg = PassRegistry::instance();
    if (reg.count() != 8)
        GTEST_SKIP() << "pinned to the paper's 8-pass registry; "
                        "GSOPT_EXTRA_PASSES widens it";
    ASSERT_EQ(reg.count(), 8u);
    EXPECT_EQ(reg.comboCount(), 256u);
    const char *ids_by_bit[] = {"adce",   "coalesce",
                                "gvn",    "reassociate",
                                "unroll", "hoist",
                                "fp_reassociate", "div_to_mul"};
    for (int bit = 0; bit < 8; ++bit) {
        EXPECT_EQ(reg.pass(bit).id, ids_by_bit[bit]) << bit;
        EXPECT_EQ(reg.bitOf(ids_by_bit[bit]), bit);
    }
    EXPECT_EQ(reg.bitOf("no_such_pass"), -1);
    // Display names match the historical FlagSet spellings.
    EXPECT_STREQ(tuner::flagName(tuner::kFpReassociate),
                 "FP Reassociate");
    EXPECT_STREQ(tuner::flagName(tuner::kDivToMul), "Div to Mul");
}

TEST(Registry, PipelineOrderIsHistorical)
{
    if (PassRegistry::instance().count() != 8)
        GTEST_SKIP() << "pinned to the paper's 8-pass registry; "
                        "GSOPT_EXTRA_PASSES widens it";
    // Application order (not bit order): Unroll, Hoist, Coalesce,
    // Reassociate, FP Reassociate, Div to Mul, GVN, ADCE.
    const char *expect[] = {"unroll",         "hoist",
                            "coalesce",       "reassociate",
                            "fp_reassociate", "div_to_mul",
                            "gvn",            "adce"};
    const auto &pipeline = PassRegistry::instance().pipeline();
    ASSERT_EQ(pipeline.size(), 8u);
    for (size_t i = 0; i < pipeline.size(); ++i)
        EXPECT_EQ(pipeline[i]->id, expect[i]) << i;
}

TEST(Registry, SignatureChangesWithRegistration)
{
    const uint64_t before = PassRegistry::instance().signature();
    {
        passes::ScopedPass extra(
            "registry_test/sig", "SigProbe",
            [](ir::Module &m) { passes::canonicalize(m); });
        EXPECT_NE(PassRegistry::instance().signature(), before);
    }
    EXPECT_EQ(PassRegistry::instance().signature(), before);
}

// ---- satellite: tree walk byte-identical to the linear pipeline ------

TEST(PipelineEquivalence, TreeMatchesLinearOnCorpusShaders)
{
    for (const char *name :
         {"simple/grayscale", "toon/bands3", "tonemap/aces"}) {
        const corpus::CorpusShader &shader =
            *corpus::findShader(name);
        auto base = emit::compileToIr(shader.source, shader.defines);

        std::map<uint64_t, std::string> tree_text;
        passes::forEachFlagCombination(
            *base, [&](const passes::OptFlags &flags,
                       const ir::Module &module) {
                tree_text[flags.mask()] = emit::emitGlsl(module);
            });
        ASSERT_EQ(tree_text.size(),
                  PassRegistry::instance().comboCount())
            << name;

        for (const FlagSet &flags : tuner::allFlagSets()) {
            auto linear = base->clone();
            passes::optimize(*linear, flags.toOptFlags());
            EXPECT_EQ(emit::emitGlsl(*linear),
                      tree_text.at(flags.bits))
                << name << " " << flags.str();
        }
    }
}

// ---- satellite: exact-bit cache keys ---------------------------------

TEST(CampaignKey, OneUlpDeviceChangeChangesKey)
{
    const gpu::DeviceModel &base =
        gpu::deviceModel(gpu::DeviceId::Arm);
    EXPECT_EQ(tuner::deviceModelKey(base),
              tuner::deviceModelKey(base));

    gpu::DeviceModel tweaked = base;
    tweaked.clockGhz = std::nextafter(tweaked.clockGhz, 2e9);
    EXPECT_NE(tuner::deviceModelKey(base),
              tuner::deviceModelKey(tweaked));

    // The old ostringstream path (6 significant digits) collided
    // exactly this class of change: past-the-6th-digit noise models.
    gpu::DeviceModel noise = base;
    noise.noiseSigma = base.noiseSigma * (1.0 + 1e-12);
    EXPECT_NE(tuner::deviceModelKey(base),
              tuner::deviceModelKey(noise));
}

TEST(CampaignKey, ShardKeyIsolatesShaders)
{
    const uint64_t set_key = tuner::deviceSetKey();
    corpus::CorpusShader a = *corpus::findShader("simple/grayscale");
    corpus::CorpusShader b = a;
    EXPECT_EQ(tuner::shardKey(a, set_key),
              tuner::shardKey(b, set_key));
    b.source += "\n// edited\n";
    EXPECT_NE(tuner::shardKey(a, set_key),
              tuner::shardKey(b, set_key));
    // Defines participate too (übershader specialisations).
    corpus::CorpusShader c = a;
    c.defines["REGISTRY_TEST"] = "1";
    EXPECT_NE(tuner::shardKey(a, set_key),
              tuner::shardKey(c, set_key));
}

// ---- satellite: bounds checking and error reporting ------------------

TEST(Bounds, SpeedupOfRejectsBadVariantIndex)
{
    tuner::DeviceMeasurement m;
    m.originalMeanNs = 100.0;
    m.variantMeanNs = {80.0, 90.0};
    EXPECT_DOUBLE_EQ(m.speedupOf(0), 20.0);
    EXPECT_THROW(m.speedupOf(-1), std::out_of_range);
    EXPECT_THROW(m.speedupOf(2), std::out_of_range);
}

TEST(Bounds, VariantOfRejectsUnexploredCombo)
{
    tuner::Exploration ex;
    ex.shaderName = "test/sparse";
    ex.variantOfCombo.emplace(0, 0);
    EXPECT_EQ(ex.variantOf(FlagSet::none()), 0);
    try {
        ex.variantOf(FlagSet(3));
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range &e) {
        EXPECT_NE(std::string(e.what()).find("test/sparse"),
                  std::string::npos);
    }
}

TEST(Bounds, EngineResultMissListsKnownShaders)
{
    std::vector<corpus::CorpusShader> mini = {
        *corpus::findShader("simple/grayscale")};
    tuner::ExperimentEngine engine(mini, 1);
    try {
        engine.result("no/such_shader");
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no/such_shader"), std::string::npos);
        EXPECT_NE(what.find("simple/grayscale"), std::string::npos);
    }
}

// ---- the decoupling headline: a ninth pass, end to end ---------------

TEST(Registry, NinthPassEndToEndWithoutTouchingOtherLayers)
{
    if (PassRegistry::instance().count() != 8)
        GTEST_SKIP() << "counts assume the 9th bit is free; "
                        "GSOPT_EXTRA_PASSES occupies it";
    // A real transformation the registry has never seen: aggressive
    // use-site sinking. Registered at the end of the pipeline with the
    // stage contract (trailing canonicalisation) honoured.
    passes::ScopedPass ninth(
        "registry_test/sink", "Sink",
        [](ir::Module &m) {
            passes::scheduleForPressure(m, 1);
            passes::canonicalize(m);
        });
    ASSERT_EQ(ninth.bit(), 8);
    EXPECT_EQ(tuner::flagCount(), 9u);
    EXPECT_EQ(tuner::comboCount(), 512u);
    EXPECT_EQ(tuner::allFlagSets().size(), 512u);
    EXPECT_TRUE(FlagSet::all().has(8));
    EXPECT_FALSE(FlagSet::lunarGlassDefaults().has(8));
    EXPECT_EQ(FlagSet::none().with(8).str(), "{Sink}");

    // OptFlags plumbing carries the extra bit through masks.
    passes::OptFlags with_ninth =
        FlagSet::none().with(8).toOptFlags();
    EXPECT_TRUE(with_ninth.test(8));
    EXPECT_EQ(with_ninth.mask(), 1ull << 8);
    EXPECT_EQ(FlagSet::fromOptFlags(with_ninth).bits, 1ull << 8);

    // Exploration sizes itself from the registry: 512 combinations,
    // every one mapped (exploreShader code untouched).
    corpus::CorpusShader s;
    s.name = "test/ninth";
    s.family = "test";
    s.source = "#version 450\n"
               "in vec2 uv;\n"
               "out vec4 c;\n"
               "void main() {\n"
               "  float a = uv.x * 3.0 + 1.0;\n"
               "  float b = uv.y / 4.0;\n"
               "  vec3 t = vec3(a, b, a * b);\n"
               "  if (uv.x > 0.5) { t = t * 2.0; }\n"
               "  c = vec4(t, a + b);\n"
               "}\n";
    tuner::Exploration ex = tuner::exploreShader(s);
    EXPECT_EQ(ex.exploredFlagCount, 9u);
    EXPECT_EQ(ex.variantOfCombo.size(), 512u);
    size_t producer_total = 0;
    for (const auto &v : ex.variants)
        producer_total += v.producers.size();
    EXPECT_EQ(producer_total, 512u);

    // The tree walk still equals the linear pipeline with the ninth
    // pass gated in (pipeline/explore code untouched).
    auto base = emit::compileToIr(s.source);
    for (uint64_t bits : {1ull << 8, (1ull << 9) - 1, 0x155ull}) {
        auto linear = base->clone();
        passes::optimize(*linear, FlagSet(bits).toOptFlags());
        const int variant = ex.variantOf(FlagSet(bits));
        EXPECT_EQ(emit::emitGlsl(*linear),
                  ex.variants[static_cast<size_t>(variant)].source)
            << bits;
    }

    // And the campaign engine runs the widened space end to end
    // (engine code untouched).
    tuner::ExperimentEngine engine({s}, 2);
    const tuner::ShaderResult &r = engine.result("test/ninth");
    EXPECT_EQ(r.byDevice.size(), gpu::allDevices().size());
    for (const auto &[dev, m] : r.byDevice) {
        EXPECT_GT(m.originalMeanNs, 0.0);
        EXPECT_EQ(m.variantMeanNs.size(), r.exploration.uniqueCount());
    }
    const double best = r.bestSpeedup(gpu::DeviceId::Arm);
    EXPECT_GE(best + 1e-9,
              r.speedupFor(gpu::DeviceId::Arm, FlagSet::none().with(8)));
}

// ---- the extra-pass catalog: licm / strength_reduce / tex_batch ------

TEST(Catalog, ListsTheThreeShippedPasses)
{
    if (PassRegistry::instance().count() != 8)
        GTEST_SKIP() << "needs the catalog unregistered; "
                        "GSOPT_EXTRA_PASSES pre-registers it";
    const auto &catalog = passes::extraPassCatalog();
    ASSERT_EQ(catalog.size(), 3u);
    EXPECT_EQ(catalog[0].id, "licm");
    EXPECT_EQ(catalog[0].name, "LICM");
    EXPECT_EQ(catalog[1].id, "strength_reduce");
    EXPECT_EQ(catalog[1].name, "Strength Reduce");
    EXPECT_EQ(catalog[2].id, "tex_batch");
    EXPECT_EQ(catalog[2].name, "Tex Batch");
    // Catalogued, not registered: the default space stays the paper's.
    for (const auto &d : catalog)
        EXPECT_EQ(PassRegistry::instance().bitOf(d.id), -1) << d.id;
    EXPECT_EQ(passes::registerExtraPass("no/such_pass"), -1);
}

TEST(Catalog, ScopedRegistrationWidensAndRestoresTheSpace)
{
    PassRegistry &reg = PassRegistry::instance();
    if (reg.count() != 8)
        GTEST_SKIP() << "needs the catalog unregistered; "
                        "GSOPT_EXTRA_PASSES pre-registers it";
    const uint64_t sig_before = reg.signature();
    const size_t count_before = reg.count();
    {
        passes::ScopedExtraPasses extras;
        ASSERT_EQ(extras.bits().size(), 3u);
        EXPECT_EQ(reg.count(), count_before + 3);
        EXPECT_EQ(tuner::comboCount(), 1ull << (count_before + 3));
        EXPECT_EQ(reg.bitOf("licm"), static_cast<int>(count_before));
        EXPECT_EQ(reg.bitOf("tex_batch"),
                  static_cast<int>(count_before) + 2);
        EXPECT_NE(reg.signature(), sig_before);
        // Appended to the end of the pipeline, catalog order.
        const auto &pipeline = reg.pipeline();
        EXPECT_EQ(pipeline[pipeline.size() - 3]->id, "licm");
        EXPECT_EQ(pipeline[pipeline.size() - 2]->id,
                  "strength_reduce");
        EXPECT_EQ(pipeline[pipeline.size() - 1]->id, "tex_batch");
        // A second scope is a no-op (everything already registered).
        passes::ScopedExtraPasses again;
        EXPECT_TRUE(again.bits().empty());
        EXPECT_EQ(reg.count(), count_before + 3);
    }
    EXPECT_EQ(reg.count(), count_before);
    EXPECT_EQ(reg.signature(), sig_before);
}

TEST(Catalog, FlagSetPlumbingCarriesCatalogBits)
{
    passes::ScopedExtraPasses extras;
    const int tb = PassRegistry::instance().bitOf("tex_batch");
    ASSERT_GE(tb, 8);
    const FlagSet set = FlagSet::none().with(tb);
    EXPECT_EQ(set.str(), "{Tex Batch}");
    passes::OptFlags flags = set.toOptFlags();
    EXPECT_TRUE(flags.test(tb));
    EXPECT_EQ(flags.mask(), 1ull << tb);
    EXPECT_EQ(FlagSet::fromOptFlags(flags), set);
    EXPECT_TRUE(FlagSet::all().has(tb));
    EXPECT_FALSE(FlagSet::lunarGlassDefaults().has(tb));
}

// ---- satellite: the parallel engine reproduces the serial engine -----

TEST(Engine, ParallelBitIdenticalToSerial)
{
    std::vector<corpus::CorpusShader> mini;
    for (const char *name :
         {"simple/grayscale", "toon/bands3", "tonemap/aces"})
        mini.push_back(*corpus::findShader(name));

    tuner::ExperimentEngine serial(mini, 1);
    tuner::ExperimentEngine parallel(mini, 4);

    ASSERT_EQ(serial.results().size(), parallel.results().size());
    for (size_t i = 0; i < serial.results().size(); ++i) {
        const tuner::ShaderResult &a = serial.results()[i];
        const tuner::ShaderResult &b = parallel.results()[i];
        EXPECT_EQ(a.exploration.shaderName, b.exploration.shaderName);
        ASSERT_EQ(a.exploration.variants.size(),
                  b.exploration.variants.size());
        for (size_t v = 0; v < a.exploration.variants.size(); ++v) {
            EXPECT_EQ(a.exploration.variants[v].source,
                      b.exploration.variants[v].source);
            EXPECT_EQ(a.exploration.variants[v].producers.size(),
                      b.exploration.variants[v].producers.size());
        }
        EXPECT_EQ(a.exploration.variantOfCombo,
                  b.exploration.variantOfCombo);
        EXPECT_EQ(a.exploration.passthroughVariant,
                  b.exploration.passthroughVariant);
        ASSERT_EQ(a.byDevice.size(), b.byDevice.size());
        for (const auto &[dev, m] : a.byDevice) {
            // Bit-identical: exact double equality, no tolerance.
            EXPECT_TRUE(m == b.byDevice.at(dev))
                << a.exploration.shaderName;
        }
    }
}

} // namespace
} // namespace gsopt
