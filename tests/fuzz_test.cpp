/**
 * @file
 * Randomised property tests: a seeded generator produces random (but
 * well-typed) fragment shaders, and every one of them must
 *
 *   1. survive the full optimization pipeline under ALL 256 flag
 *      combinations with identical semantics (vs the reference
 *      interpreter), and
 *   2. round-trip through the GLSL back end into the driver path.
 *
 * The generator favours the constructs the passes rewrite: additive and
 * multiplicative chains with shared subterms, constant divisions,
 * component writes, branchy assignments, and constant-trip loops.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "emit/offline.h"
#include "ir/interp.h"
#include "lower/lower.h"
#include "support/rng.h"

namespace gsopt {
namespace {

/** Emit a random float expression over the in-scope float scalars. */
std::string
randomScalarExpr(Rng &rng, const std::vector<std::string> &scalars,
                 int depth)
{
    if (depth <= 0 || rng.below(4) == 0) {
        switch (rng.below(3)) {
          case 0:
            return scalars[rng.below(scalars.size())];
          case 1: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f",
                          rng.uniform(-2.0, 2.0));
            return buf;
          }
          default:
            return scalars[rng.below(scalars.size())];
        }
    }
    std::string a = randomScalarExpr(rng, scalars, depth - 1);
    std::string b = randomScalarExpr(rng, scalars, depth - 1);
    switch (rng.below(8)) {
      case 0:
        return "(" + a + " + " + b + ")";
      case 1:
        return "(" + a + " - " + b + ")";
      case 2:
        return "(" + a + " * " + b + ")";
      case 3: {
        // Division by a non-zero constant (DivToMul fodder).
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      rng.uniform(0.5, 4.0));
        return "(" + a + " / " + buf + ")";
      }
      case 4:
        return "min(" + a + ", " + b + ")";
      case 5:
        return "max(" + a + ", " + b + ")";
      case 6:
        return "(" + a + " + " + b + " - " + a + ")"; // cancellation
      default:
        return "(" + a + " * 1.0 + 0.0)"; // identity fodder
    }
}

/** Build one random shader; seeded and deterministic. */
std::string
randomShader(uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;
    os << "#version 450\n";
    os << "in vec2 uv;\n";
    os << "in float tone;\n";
    os << "uniform float gain;\n";
    os << "uniform sampler2D tex;\n";
    os << "out vec4 fragColor;\n";
    os << "void main() {\n";

    std::vector<std::string> scalars = {"uv.x", "uv.y", "tone",
                                        "gain"};
    const int n_vars = 2 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n_vars; ++i) {
        std::string name = "s" + std::to_string(i);
        os << "    float " << name << " = "
           << randomScalarExpr(rng, scalars, 3) << ";\n";
        scalars.push_back(name);
    }

    // Maybe a constant-trip loop accumulating a chain.
    if (rng.below(2) == 0) {
        const int trips = 2 + static_cast<int>(rng.below(6));
        os << "    float acc = 0.0;\n";
        os << "    for (int i = 0; i < " << trips << "; i++) {\n";
        os << "        acc += " << randomScalarExpr(rng, scalars, 2)
           << " * float(i + 1);\n";
        os << "    }\n";
        scalars.push_back("acc");
    }

    // Maybe a branchy assignment (hoist fodder).
    if (rng.below(2) == 0) {
        os << "    float branchy = 0.25;\n";
        os << "    if (" << scalars[rng.below(scalars.size())]
           << " > 0.4) {\n";
        os << "        branchy = " << randomScalarExpr(rng, scalars, 2)
           << ";\n";
        os << "    } else {\n";
        os << "        branchy = " << randomScalarExpr(rng, scalars, 2)
           << ";\n";
        os << "    }\n";
        scalars.push_back("branchy");
    }

    // Component writes (coalesce fodder) + optional texture.
    os << "    vec4 v = vec4(0.0);\n";
    for (int lane = 0; lane < 4; ++lane) {
        os << "    v." << "xyzw"[lane] << " = "
           << randomScalarExpr(rng, scalars, 2) << ";\n";
    }
    if (rng.below(2) == 0)
        os << "    v = v * 0.5 + texture(tex, uv) * 0.5;\n";
    os << "    fragColor = v;\n";
    os << "}\n";
    return os.str();
}

class RandomShader : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomShader, All256CombosPreserveSemantics)
{
    const uint64_t seed = 0xf00dULL + static_cast<uint64_t>(GetParam());
    const std::string src = randomShader(seed);

    auto reference = emit::compileToIr(src);

    std::vector<ir::InterpEnv> envs;
    for (double x : {0.15, 0.85}) {
        ir::InterpEnv env;
        env.inputs["uv"] = {x, 1.0 - x};
        env.inputs["tone"] = {0.3 + x};
        env.uniforms["gain"] = {1.25};
        envs.push_back(std::move(env));
    }
    std::vector<ir::InterpResult> want;
    for (const auto &env : envs)
        want.push_back(ir::interpret(*reference, env));

    for (int bits = 0; bits < 256; ++bits) {
        passes::OptFlags flags;
        flags.adce = bits & 1;
        flags.coalesce = bits & 2;
        flags.gvn = bits & 4;
        flags.reassociate = bits & 8;
        flags.unroll = bits & 16;
        flags.hoist = bits & 32;
        flags.fpReassociate = bits & 64;
        flags.divToMul = bits & 128;

        // Full text round trip: optimize, emit, re-parse (driver path).
        std::string text = emit::optimizeShaderSource(src, flags);
        auto reparsed = emit::compileToIr(text);

        for (size_t e = 0; e < envs.size(); ++e) {
            auto got = ir::interpret(*reparsed, envs[e]);
            for (const auto &[name, lanes] : want[e].outputs) {
                const auto &g = got.outputs.at(name);
                ASSERT_EQ(g.size(), lanes.size());
                for (size_t k = 0; k < lanes.size(); ++k) {
                    ASSERT_NEAR(g[k], lanes[k],
                                1e-6 * (1.0 + std::fabs(lanes[k])))
                        << "seed " << seed << " flags " << bits
                        << "\n"
                        << src;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShader, ::testing::Range(0, 12));

TEST(RandomShaderGen, IsDeterministic)
{
    EXPECT_EQ(randomShader(7), randomShader(7));
    EXPECT_NE(randomShader(7), randomShader(8));
}

} // namespace
} // namespace gsopt
