/**
 * @file
 * Randomised property tests: a seeded generator produces random (but
 * well-typed) fragment shaders, and every one of them must
 *
 *   1. survive the full optimization pipeline under EVERY flag
 *      combination of the FULL pass registry — the built-in eight plus
 *      the whole extra-pass catalog (licm, strength_reduce, tex_batch),
 *      2048 combinations by default — with identical semantics vs the
 *      reference interpretation of the unoptimised shader,
 *   2. interpret identically across all three engines — the batched
 *      SIMT engine evaluates all probe environments as lanes of ONE
 *      run per distinct optimised module (the fast path), and a
 *      rotating lane is re-checked bit-identically on the slot-indexed
 *      and map-based golden engines — and
 *   3. round-trip through the GLSL back end into the driver path
 *      (emit, re-parse, re-interpret batched) for every distinct
 *      variant.
 *
 * Batching is what pays for width here: the walk probes 8 environments
 * per distinct module (previously 2) at one batched interpretation per
 * engine check instead of one scalar run per environment, so the
 * nightly seed budget rises with flat wall-clock.
 *
 * The generator favours the constructs the passes rewrite: additive and
 * multiplicative chains with shared subterms, constant divisions,
 * component writes, branchy assignments, constant-trip loops — and the
 * catalog-pass fodder: nested constant-trip loops with invariant
 * subtrees (including trip counts `unroll` declines), pow-by-small-int
 * and integer multiply/index chains, and duplicate texture fetches
 * across block boundaries.
 *
 * The walk uses the memoized combination tree and checks each module
 * once per distinct structural fingerprint, so depth scales with the
 * number of *distinct* variants, not 2^N. Seed count comes from the
 * GSOPT_FUZZ_ITERS environment knob: the tier-1 default stays small;
 * the nightly CI job runs the 200+ the acceptance bar asks for.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_set>

#include <unistd.h>

#include "emit/emit.h"
#include "emit/offline.h"
#include "glsl/frontend.h"
#include "ir/interp.h"
#include "ir/interp_batch.h"
#include "lower/lower.h"
#include "passes/passes.h"
#include "passes/registry.h"
#include "support/governor.h"
#include "support/ipc.h"
#include "support/rng.h"
#include "support/time.h"

namespace gsopt {
namespace {

/** Seeds to fuzz: GSOPT_FUZZ_ITERS, defaulting to a quick tier-1 run. */
int
fuzzSeedCount()
{
    if (const char *env = std::getenv("GSOPT_FUZZ_ITERS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    return 12;
}

/** Emit a random float expression over the in-scope float scalars. */
std::string
randomScalarExpr(Rng &rng, const std::vector<std::string> &scalars,
                 int depth)
{
    if (depth <= 0 || rng.below(4) == 0) {
        switch (rng.below(3)) {
          case 0:
            return scalars[rng.below(scalars.size())];
          case 1: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.3f",
                          rng.uniform(-2.0, 2.0));
            return buf;
          }
          default:
            return scalars[rng.below(scalars.size())];
        }
    }
    std::string a = randomScalarExpr(rng, scalars, depth - 1);
    std::string b = randomScalarExpr(rng, scalars, depth - 1);
    switch (rng.below(9)) {
      case 0:
        return "(" + a + " + " + b + ")";
      case 1:
        return "(" + a + " - " + b + ")";
      case 2:
        return "(" + a + " * " + b + ")";
      case 3: {
        // Division by a non-zero constant (DivToMul fodder).
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      rng.uniform(0.5, 4.0));
        return "(" + a + " / " + buf + ")";
      }
      case 4:
        return "min(" + a + ", " + b + ")";
      case 5:
        return "max(" + a + ", " + b + ")";
      case 6:
        return "(" + a + " + " + b + " - " + a + ")"; // cancellation
      case 7: {
        // pow by a small constant integer exponent (strength_reduce
        // fodder); the base is kept positive so the reference and the
        // multiply chain agree away from pow's undefined region.
        const int k = 2 + static_cast<int>(rng.below(3));
        return "pow(abs(" + a + ") + 0.5, " + std::to_string(k) +
               ".0)";
      }
      default:
        return "(" + a + " * 1.0 + 0.0)"; // identity fodder
    }
}

/** Build one random shader; seeded and deterministic. */
std::string
randomShader(uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;
    os << "#version 450\n";
    os << "in vec2 uv;\n";
    os << "in float tone;\n";
    os << "uniform float gain;\n";
    os << "uniform sampler2D tex;\n";
    os << "out vec4 fragColor;\n";
    os << "void main() {\n";

    std::vector<std::string> scalars = {"uv.x", "uv.y", "tone",
                                        "gain"};
    const int n_vars = 2 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n_vars; ++i) {
        std::string name = "s" + std::to_string(i);
        os << "    float " << name << " = "
           << randomScalarExpr(rng, scalars, 3) << ";\n";
        scalars.push_back(name);
    }

    // Maybe a duplicate texture fetch pair: one dominating fetch plus
    // a re-fetch of the same coordinates later (and, below, possibly
    // one more inside a branch or loop) — tex_batch fodder that
    // block-local CSE cannot reach.
    const bool dup_fetch = rng.below(2) == 0;
    if (dup_fetch) {
        os << "    vec4 t0 = texture(tex, uv);\n";
        scalars.push_back("t0.x");
        scalars.push_back("t0.w");
    }

    // Maybe an integer strength-reduction chain: int scaling by small
    // and power-of-two factors plus an index-style refold.
    if (rng.below(2) == 0) {
        const int f1 = 2 + static_cast<int>(rng.below(4)); // 2..5
        const int f2 = 1 + static_cast<int>(rng.below(4)); // 1..4
        os << "    int q = int(" << scalars[rng.below(scalars.size())]
           << " * 8.0 + 9.0);\n";
        os << "    int qr = q * " << f1 << " + q * " << f2 << ";\n";
        os << "    int qs = q * " << (rng.below(2) ? 4 : 2) << ";\n";
        os << "    float qf = float(qr + qs) * 0.03;\n";
        scalars.push_back("qf");
    }

    // Maybe a constant-trip loop accumulating a chain, with an
    // invariant subtree (licm fodder). Half the time the trip count is
    // over unroll's 64-trip budget — the loops unroll declines are
    // exactly where licm must hold its own.
    if (rng.below(3) != 0) {
        const int trips =
            rng.below(2) == 0
                ? 2 + static_cast<int>(rng.below(6))
                : 66 + static_cast<int>(rng.below(24));
        os << "    float acc = 0.0;\n";
        os << "    for (int i = 0; i < " << trips << "; i++) {\n";
        os << "        float inv = "
           << randomScalarExpr(rng, scalars, 2) << ";\n";
        if (dup_fetch && rng.below(2) == 0)
            os << "        inv = inv + texture(tex, uv).y;\n";
        os << "        acc += " << randomScalarExpr(rng, scalars, 1)
           << " * float(i + 1) + inv;\n";
        // Maybe nest a small inner loop with its own invariant.
        if (rng.below(2) == 0) {
            const int inner = 2 + static_cast<int>(rng.below(4));
            os << "        for (int j = 0; j < " << inner
               << "; j++) {\n";
            os << "            acc += inv * 0.125 + float(j) * "
               << "0.0625;\n";
            os << "        }\n";
        }
        os << "    }\n";
        scalars.push_back("acc");
    }

    // Maybe a branchy assignment (hoist fodder).
    if (rng.below(2) == 0) {
        os << "    float branchy = 0.25;\n";
        os << "    if (" << scalars[rng.below(scalars.size())]
           << " > 0.4) {\n";
        os << "        branchy = " << randomScalarExpr(rng, scalars, 2);
        if (dup_fetch)
            os << " + texture(tex, uv).z";
        os << ";\n";
        os << "    } else {\n";
        os << "        branchy = " << randomScalarExpr(rng, scalars, 2)
           << ";\n";
        os << "    }\n";
        scalars.push_back("branchy");
    }

    // Component writes (coalesce fodder) + optional texture.
    os << "    vec4 v = vec4(0.0);\n";
    for (int lane = 0; lane < 4; ++lane) {
        os << "    v." << "xyzw"[lane] << " = "
           << randomScalarExpr(rng, scalars, 2) << ";\n";
    }
    if (rng.below(2) == 0)
        os << "    v = v * 0.5 + texture(tex, uv) * 0.5;\n";
    os << "    fragColor = v;\n";
    os << "}\n";
    return os.str();
}

class RandomShader : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomShader, FullRegistryTreePreservesSemantics)
{
    // The full registry: built-ins plus every catalog pass.
    passes::ScopedExtraPasses extras;
    const passes::PassRegistry &reg = passes::PassRegistry::instance();
    ASSERT_GE(reg.count(), 11u);

    const uint64_t seed = 0xf00dULL + static_cast<uint64_t>(GetParam());
    const std::string src = randomShader(seed);

    auto reference = emit::compileToIr(src);

    // 8 probe environments, evaluated as the 8 lanes of one batch.
    constexpr size_t kProbeLanes = 8;
    ir::BatchEnv benv;
    benv.width = kProbeLanes;
    for (size_t l = 0; l < kProbeLanes; ++l) {
        const double x =
            0.15 + 0.7 * static_cast<double>(l) / (kProbeLanes - 1);
        benv.setLaneInput("uv", l, {x, 1.0 - x});
        benv.setLaneInput("tone", l, {0.3 + x});
    }
    benv.uniforms["gain"] = {1.25};
    std::vector<ir::InterpEnv> envs;
    for (size_t l = 0; l < kProbeLanes; ++l)
        envs.push_back(benv.laneEnv(l));

    // Ground truth: the golden map-based engine on the unoptimised IR.
    std::vector<ir::InterpResult> want;
    for (const auto &env : envs)
        want.push_back(ir::interpretReference(*reference, env));

    auto check_against_reference = [&](const ir::BatchResult &got,
                                       const char *what) {
        for (size_t e = 0; e < envs.size(); ++e) {
            for (const auto &[name, lanes] : want[e].outputs) {
                ASSERT_EQ(got.outputComps(name), lanes.size());
                for (size_t k = 0; k < lanes.size(); ++k) {
                    ASSERT_NEAR(got.output(name, k, e), lanes[k],
                                1e-6 * (1.0 + std::fabs(lanes[k])))
                        << what << " seed " << seed << " env " << e
                        << " output " << name << "[" << k << "]\n"
                        << src;
                }
            }
        }
    };

    uint64_t combos = 0;
    std::unordered_set<uint64_t> seen;
    passes::forEachFlagCombination(
        *reference,
        [&](const passes::OptFlags &flags, const ir::Module &module,
            uint64_t fingerprint) {
            ++combos;
            if (!seen.insert(fingerprint).second)
                return; // distinct modules only: the walk memoizes
            SCOPED_TRACE("flags mask " +
                         std::to_string(flags.mask()));

            // (1) semantics vs the unoptimised reference run: one
            // batched interpretation covers all 8 environments.
            const ir::BatchResult batch =
                ir::interpretBatch(module, benv);
            check_against_reference(batch, "optimized");

            // (2) tri-engine bit-identity on a rotating probe lane:
            // slot-indexed, map-based golden, and the batched lane
            // must agree bit-for-bit (outputs, discard, and the
            // per-lane dynamic instruction count).
            const size_t lane =
                static_cast<size_t>(fingerprint % kProbeLanes);
            const auto slot = ir::interpret(module, envs[lane]);
            const auto ref =
                ir::interpretReference(module, envs[lane]);
            ASSERT_EQ(slot.discarded, ref.discarded);
            ASSERT_EQ(slot.outputs, ref.outputs)
                << "slot/reference divergence, seed " << seed;
            const auto blane = batch.laneResult(lane);
            ASSERT_EQ(blane.discarded, slot.discarded);
            ASSERT_EQ(blane.executedInstructions,
                      slot.executedInstructions)
                << "batched lane count diverged, seed " << seed;
            ASSERT_EQ(blane.outputs, slot.outputs)
                << "batched/scalar divergence, seed " << seed
                << " lane " << lane;

            // (3) driver path: emit, re-parse, re-interpret batched.
            const std::string text = emit::emitGlsl(module);
            auto reparsed = emit::compileToIr(text);
            check_against_reference(
                ir::interpretBatch(*reparsed, benv), "round-trip");
        });
    EXPECT_EQ(combos, reg.comboCount()) << "walk must cover 2^N";
    EXPECT_GE(seen.size(), 1u);
}

TEST_P(RandomShader, RandomPlanWalkPreservesSemantics)
{
    // The ordering dimension: beyond the canonical-order lattice the
    // last test sweeps, every *permutation* of every subset must also
    // preserve semantics. Each seed draws K random plans — a random
    // subset of the full registry in a random order — and walks them
    // through the shared-memo plan applier, holding each distinct
    // result to the same three properties: reference-interp
    // bit-identity, batched-lane cross-check, GLSL round trip.
    passes::ScopedExtraPasses extras;
    const passes::PassRegistry &reg = passes::PassRegistry::instance();
    ASSERT_GE(reg.count(), 11u);

    const uint64_t seed = 0xf00dULL + static_cast<uint64_t>(GetParam());
    const std::string src = randomShader(seed);
    auto reference = emit::compileToIr(src);

    constexpr size_t kProbeLanes = 8;
    ir::BatchEnv benv;
    benv.width = kProbeLanes;
    for (size_t l = 0; l < kProbeLanes; ++l) {
        const double x =
            0.15 + 0.7 * static_cast<double>(l) / (kProbeLanes - 1);
        benv.setLaneInput("uv", l, {x, 1.0 - x});
        benv.setLaneInput("tone", l, {0.3 + x});
    }
    benv.uniforms["gain"] = {1.25};
    std::vector<ir::InterpEnv> envs;
    for (size_t l = 0; l < kProbeLanes; ++l)
        envs.push_back(benv.laneEnv(l));

    std::vector<ir::InterpResult> want;
    for (const auto &env : envs)
        want.push_back(ir::interpretReference(*reference, env));

    auto check_against_reference = [&](const ir::BatchResult &got,
                                       const char *what,
                                       const std::string &plan) {
        for (size_t e = 0; e < envs.size(); ++e) {
            for (const auto &[name, lanes] : want[e].outputs) {
                ASSERT_EQ(got.outputComps(name), lanes.size());
                for (size_t k = 0; k < lanes.size(); ++k) {
                    ASSERT_NEAR(got.output(name, k, e), lanes[k],
                                1e-6 * (1.0 + std::fabs(lanes[k])))
                        << what << " seed " << seed << " plan " << plan
                        << " env " << e << " output " << name << "["
                        << k << "]\n"
                        << src;
                }
            }
        }
    };

    // K random plans per seed: GSOPT_FUZZ_PLANS scales the nightly
    // depth the same way GSOPT_FUZZ_ITERS scales seed count.
    int k_plans = 6;
    if (const char *env = std::getenv("GSOPT_FUZZ_PLANS")) {
        const int n = std::atoi(env);
        if (n > 0)
            k_plans = n;
    }
    Rng rng(hashCombine(seed, fnv1a("random-plan-walk")));
    std::vector<passes::PassPlan> plans;
    for (int p = 0; p < k_plans; ++p) {
        passes::PassPlan plan =
            passes::PassPlan::canonicalOf(rng.below(reg.comboCount()));
        for (size_t i = plan.bits.size(); i > 1; --i)
            std::swap(plan.bits[i - 1], plan.bits[rng.below(i)]);
        ASSERT_TRUE(plan.valid());
        plans.push_back(std::move(plan));
    }

    size_t walked = 0;
    std::unordered_set<uint64_t> seen;
    passes::forEachPlan(
        *reference, plans,
        [&](const passes::PassPlan &plan, const ir::Module &module,
            uint64_t fingerprint) {
            ++walked;
            if (!seen.insert(fingerprint).second)
                return; // distinct results only: the memo shares
            SCOPED_TRACE("plan " + plan.str());

            const ir::BatchResult batch =
                ir::interpretBatch(module, benv);
            check_against_reference(batch, "plan", plan.str());

            const size_t lane =
                static_cast<size_t>(fingerprint % kProbeLanes);
            const auto slot = ir::interpret(module, envs[lane]);
            const auto blane = batch.laneResult(lane);
            ASSERT_EQ(blane.discarded, slot.discarded);
            ASSERT_EQ(blane.executedInstructions,
                      slot.executedInstructions)
                << "batched lane count diverged, seed " << seed
                << " plan " << plan.str();
            ASSERT_EQ(blane.outputs, slot.outputs)
                << "batched/scalar divergence, seed " << seed
                << " plan " << plan.str() << " lane " << lane;

            const std::string text = emit::emitGlsl(module);
            auto reparsed = emit::compileToIr(text);
            check_against_reference(ir::interpretBatch(*reparsed, benv),
                                    "round-trip", plan.str());
        });
    EXPECT_EQ(walked, plans.size());
    EXPECT_GE(seen.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShader,
                         ::testing::Range(0, fuzzSeedCount()));

// ------------------------------------------------- hostile inputs

/** Hostile inputs to sweep: GSOPT_FUZZ_HOSTILE=1 selects the nightly
 * 200-input bar, the tier-1 default keeps one of each shape. */
int
hostileInputCount()
{
    if (const char *env = std::getenv("GSOPT_FUZZ_HOSTILE")) {
        if (*env && *env != '0')
            return 200;
    }
    return 16;
}

/**
 * Adversarial generator: inputs built to hang, overflow, or exhaust a
 * naive compiler — macro bombs (recursive and exponential), nesting
 * bombs (expression and block), runaway loops (canonical and generic),
 * oversized sources, and degenerate tokens. Deterministic per index;
 * sizes jitter so the sweep probes both sides of every cap.
 */
std::string
hostileShader(uint64_t index)
{
    Rng rng(hashCombine(0xbadf00dULL, index));
    std::ostringstream os;
    os << "#version 450\n";
    switch (index % 8) {
      case 0: { // recursive macro bomb (mutual expansion cycle)
        os << "#define PING PONG PONG\n";
        os << "#define PONG PING PING\n";
        os << "out vec4 fragColor;\n";
        os << "void main() { float x = PING; fragColor = vec4(x); }\n";
        break;
      }
      case 1: { // exponential (non-recursive) macro bomb
        const int levels = 18 + static_cast<int>(rng.below(10));
        os << "#define E0 x\n";
        for (int i = 1; i <= levels; ++i)
            os << "#define E" << i << " E" << (i - 1) << " E"
               << (i - 1) << "\n";
        os << "out vec4 fragColor;\n";
        os << "void main() { float E" << levels
           << "; fragColor = vec4(0.0); }\n";
        break;
      }
      case 2: { // expression paren-nesting bomb
        const size_t depth = 600 + rng.below(40000);
        os << "out vec4 fragColor;\n";
        os << "void main() { float x = ";
        os << std::string(depth, '(') << "1.0"
           << std::string(depth, ')');
        os << "; fragColor = vec4(x); }\n";
        break;
      }
      case 3: { // block-nesting bomb
        const size_t depth = 600 + rng.below(30000);
        os << "out vec4 fragColor;\n";
        os << "void main() " << std::string(depth, '{');
        os << "fragColor = vec4(1.0);" << std::string(depth, '}');
        os << "\n";
        break;
      }
      case 4: { // giant canonical for loop: bound the work, not trips
        const long trips =
            50'000'000L + static_cast<long>(rng.below(50'000'000));
        os << "out vec4 fragColor;\n";
        os << "void main() {\n    float acc = 0.0;\n";
        os << "    for (int i = 0; i < " << trips
           << "; i++) { acc += 0.5; }\n";
        os << "    fragColor = vec4(acc);\n}\n";
        break;
      }
      case 5: { // giant generic while loop
        os << "out vec4 fragColor;\n";
        os << "void main() {\n    float x = 0.0;\n";
        os << "    while (x < " << (50000 + rng.below(100000))
           << ".0) { x = x + 0.001; }\n";
        os << "    fragColor = vec4(x);\n}\n";
        break;
      }
      case 6: { // giant source: tens of thousands of statements
        const size_t stmts = 5000 + rng.below(40000);
        os << "out vec4 fragColor;\n";
        os << "void main() {\n    float s0 = 0.5;\n";
        for (size_t i = 1; i < stmts; ++i)
            os << "    float s" << i << " = s" << (i - 1)
               << " * 1.0001 + 0.5;\n";
        os << "    fragColor = vec4(s" << (stmts - 1) << ");\n}\n";
        break;
      }
      default: { // degenerate tokens: huge identifier, huge literal
        const std::string big(5000 + rng.below(200000), 'a');
        os << "out vec4 fragColor;\n";
        os << "void main() {\n";
        os << "    float " << big << " = 0."
           << std::string(1000 + rng.below(100000), '3') << ";\n";
        os << "    fragColor = vec4(" << big << ");\n}\n";
        break;
      }
    }
    return os.str();
}

TEST(HostileFuzz, EveryInputTerminatesWithinTheDeadline)
{
    // The resilience bar: under a governed budget every hostile input
    // must terminate promptly with exactly one of (a) a successful
    // compile+run, (b) clean diagnostics, or (c) ResourceExhausted.
    // Hangs, crashes, OOMs, and any other exception are failures —
    // gtest surfaces a stray exception as one.
    const int n = hostileInputCount();
    for (int i = 0; i < n; ++i) {
        SCOPED_TRACE("hostile input " + std::to_string(i));
        const std::string src = hostileShader(static_cast<uint64_t>(i));

        governor::Caps caps;
        caps.deadlineMs = 4000;
        caps[governor::Dim::PreprocBytes] = 8u << 20;
        caps[governor::Dim::Tokens] = 400'000;
        caps[governor::Dim::IrInstrs] = 2'000'000;
        caps[governor::Dim::ArenaBytes] = 256u << 20;
        caps[governor::Dim::InterpSteps] = 2'000'000;
        governor::ScopedBudget scope(caps);

        const uint64_t t0 = nowNs();
        try {
            DiagEngine diags;
            auto compiled = glsl::tryCompileShader(src, {}, diags);
            if (!compiled) {
                EXPECT_TRUE(diags.hasErrors())
                    << "rejection must carry a diagnostic";
            } else {
                auto module = lower::lowerShader(*compiled);
                ir::InterpEnv env;
                // The legacy trip cap out of the way: the budget (work
                // and wall clock) is what must stop runaway loops.
                env.maxLoopIterations = 1'000'000'000L;
                ir::interpret(*module, env);
            }
        } catch (const governor::ResourceExhausted &e) {
            EXPECT_NE(std::string(e.what()).find("resource exhausted"),
                      std::string::npos);
        }
        // Prompt termination: well under the deadline plus slack even
        // on sanitizer builds.
        EXPECT_LT(nowNs() - t0, 60'000'000'000ull)
            << "hostile input must not crawl";
    }
}

TEST(HostileGen, IsDeterministicAndCoversEveryShape)
{
    for (uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(hostileShader(i), hostileShader(i));
    EXPECT_NE(hostileShader(0).find("PING"), std::string::npos);
    EXPECT_NE(hostileShader(1).find("#define E1 "), std::string::npos);
    EXPECT_NE(hostileShader(2).find("((((("), std::string::npos);
    EXPECT_NE(hostileShader(3).find("{{{{{"), std::string::npos);
    EXPECT_NE(hostileShader(4).find("for (int i = 0; i < "),
              std::string::npos);
    EXPECT_NE(hostileShader(5).find("while (x < "), std::string::npos);
    EXPECT_NE(hostileShader(6).find("float s4999"), std::string::npos);
    EXPECT_NE(hostileShader(7).find("aaaaaaaa"), std::string::npos);
}

TEST(RandomShaderGen, IsDeterministic)
{
    EXPECT_EQ(randomShader(7), randomShader(7));
    EXPECT_NE(randomShader(7), randomShader(8));
}

TEST(RandomShaderGen, EmitsTheCatalogPassFodder)
{
    // Across a window of seeds the generator must exercise every
    // construct class the new passes rewrite; a generator regression
    // that silently stops emitting one would hollow out the property.
    bool pow_chain = false, int_chain = false, dup_fetch = false;
    bool big_loop = false, nested_loop = false;
    for (uint64_t s = 0; s < 32; ++s) {
        const std::string src = randomShader(0xf00dULL + s);
        pow_chain |= src.find("pow(abs(") != std::string::npos;
        int_chain |= src.find("int q") != std::string::npos;
        dup_fetch |= src.find("t0") != std::string::npos;
        for (int trips = 66; trips < 90; ++trips)
            big_loop |= src.find("i < " + std::to_string(trips)) !=
                        std::string::npos;
        nested_loop |= src.find("int j") != std::string::npos;
    }
    EXPECT_TRUE(pow_chain);
    EXPECT_TRUE(int_chain);
    EXPECT_TRUE(dup_fetch);
    EXPECT_TRUE(big_loop);
    EXPECT_TRUE(nested_loop);
}

// ================================================================
// IPC frame protocol (support/ipc): the wire layer of the
// distributed campaign. Properties: every payload round-trips bit
// exactly (through the in-memory decoder and through a real pipe);
// oversized and "negative" lengths are rejected before allocation;
// and no single-byte corruption anywhere in a frame is ever decoded
// as a frame — it either throws ProtocolError or leaves the decoder
// waiting for more bytes. GSOPT_FUZZ_IPC=1 selects the nightly depth
// (more frames, payloads up to 4 MiB, intended for the ASan job).
// ================================================================

/** Nightly depth knob for the frame fuzzer. */
bool
ipcFuzzDeep()
{
    const char *env = std::getenv("GSOPT_FUZZ_IPC");
    return env && *env && *env != '0';
}

std::string
randomPayload(Rng &rng, size_t size)
{
    std::string bytes(size, '\0');
    for (char &c : bytes)
        c = static_cast<char>(rng.below(256));
    return bytes;
}

TEST(IpcFrameFuzz, PayloadsRoundTripThroughDecoder)
{
    std::vector<size_t> sizes = {0,    1,    7,     24,
                                 1000, 4096, 65536, 1u << 20};
    if (ipcFuzzDeep())
        sizes.push_back(4u << 20);
    Rng rng(0x19c);
    for (size_t size : sizes) {
        const uint32_t type = static_cast<uint32_t>(rng.below(1000));
        const std::string payload = randomPayload(rng, size);
        const std::string wire = ipc::encodeFrame(type, payload);
        ASSERT_EQ(wire.size(), ipc::kHeaderBytes + size);

        ipc::FrameDecoder decoder;
        // Feed in awkward chunks to exercise partial-header and
        // partial-payload states.
        ipc::Frame frame;
        size_t fed = 0;
        while (fed < wire.size()) {
            const size_t chunk =
                std::min<size_t>(1 + rng.below(8191), wire.size() - fed);
            EXPECT_FALSE(decoder.next(frame));
            decoder.feed(wire.data() + fed, chunk);
            fed += chunk;
        }
        ASSERT_TRUE(decoder.next(frame)) << "size " << size;
        EXPECT_EQ(frame.type, type);
        EXPECT_TRUE(frame.payload == payload);
        EXPECT_FALSE(decoder.midFrame());
    }
}

TEST(IpcFrameFuzz, PayloadsRoundTripThroughAPipe)
{
    std::vector<size_t> sizes = {0, 1, 513, 65536};
    if (ipcFuzzDeep())
        sizes.push_back(4u << 20);
    Rng rng(0x91e);
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    std::vector<std::pair<uint32_t, std::string>> sent;
    for (size_t size : sizes)
        sent.emplace_back(static_cast<uint32_t>(rng.below(100)),
                          randomPayload(rng, size));
    // Writer thread: a 4 MiB frame does not fit a pipe buffer, so
    // write and read must overlap (exactly as coordinator/worker do).
    std::thread writer([&] {
        for (const auto &[type, payload] : sent)
            ipc::writeFrame(fds[1], type, payload);
        ::close(fds[1]);
    });
    ipc::Frame frame;
    for (const auto &[type, payload] : sent) {
        ASSERT_TRUE(ipc::readFrame(fds[0], frame));
        EXPECT_EQ(frame.type, type);
        EXPECT_TRUE(frame.payload == payload);
    }
    EXPECT_FALSE(ipc::readFrame(fds[0], frame)); // clean EOF
    writer.join();
    ::close(fds[0]);
}

TEST(IpcFrameFuzz, OversizedAndNegativeLengthsRejectedPreAllocation)
{
    // Craft headers by hand: magic/type valid, length hostile.
    for (uint64_t length :
         {ipc::kMaxFramePayload + 1, uint64_t(1) << 40,
          ~uint64_t(0) /* "negative" as signed */}) {
        std::string header = ipc::encodeFrame(3, "xy").substr(
            0, ipc::kHeaderBytes);
        std::memcpy(&header[8], &length, sizeof(length));
        ipc::FrameDecoder decoder;
        decoder.feed(header.data(), header.size());
        ipc::Frame frame;
        EXPECT_THROW(decoder.next(frame), ipc::ProtocolError)
            << "length " << length;
    }
}

TEST(IpcFrameFuzz, MidFrameEofIsAProtocolError)
{
    const std::string wire = ipc::encodeFrame(5, "half a frame");
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], wire.data(), wire.size() / 2),
              static_cast<ssize_t>(wire.size() / 2));
    ::close(fds[1]);
    ipc::Frame frame;
    EXPECT_THROW(ipc::readFrame(fds[0], frame), ipc::ProtocolError);
    ::close(fds[0]);
}

TEST(IpcFrameFuzz, NoSingleByteFlipDecodesAsAFrame)
{
    const int frames = ipcFuzzDeep() ? 256 : 24;
    Rng rng(0xf11b);
    for (int i = 0; i < frames; ++i) {
        const uint32_t type = static_cast<uint32_t>(rng.below(7)) + 1;
        const std::string payload =
            randomPayload(rng, rng.below(2048));
        const std::string wire = ipc::encodeFrame(type, payload);
        for (int flip = 0; flip < 64; ++flip) {
            std::string bad = wire;
            const size_t pos = rng.below(bad.size());
            const uint8_t bit = 1u << rng.below(8);
            bad[pos] = static_cast<char>(
                static_cast<uint8_t>(bad[pos]) ^ bit);
            ipc::FrameDecoder decoder;
            decoder.feed(bad.data(), bad.size());
            ipc::Frame frame;
            // The flip must never yield a decoded frame: corruption
            // throws, and a grown length field merely starves the
            // decoder. Silence is the one unacceptable outcome.
            try {
                EXPECT_FALSE(decoder.next(frame))
                    << "frame " << i << " flip at byte " << pos;
            } catch (const ipc::ProtocolError &) {
                // detected — good
            }
        }
    }
}

} // namespace
} // namespace gsopt
