/**
 * @file
 * Golden equivalence for the slot-indexed interpreter: across corpus
 * shaders and a sample of pass combinations, the dense-register engine
 * must produce *bit-identical* results to the map-based reference
 * implementation it replaced (same outputs, same discard behaviour,
 * same dynamic instruction count) — and the batched SIMT engine must
 * produce bit-identical per-lane results to the scalar engine on every
 * corpus shader under every combination of the full pass registry.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "corpus/corpus.h"
#include "glsl/frontend.h"
#include "ir/interp.h"
#include "ir/interp_batch.h"
#include "lower/lower.h"
#include "passes/passes.h"
#include "passes/registry.h"
#include "runtime/framework.h"
#include "tuner/flags.h"

namespace gsopt {
namespace {

/** Shaders spanning the corpus families: loops + const arrays,
 * branches, textures, übershader specialisation, generic loops. */
const char *kShaders[] = {
    "blur/weighted9", "simple/grayscale", "tonemap/aces",
    "toon/bands3",    "deferred/lights4", "pbr/full",
    "fxaa/high",      "uber/car_chase",
};

/** Pass combinations sampling the flag space: none, defaults, all,
 * each flag alone, and a few mixed sets. */
std::vector<tuner::FlagSet>
sampleFlagSets()
{
    std::vector<tuner::FlagSet> out = {
        tuner::FlagSet::none(),
        tuner::FlagSet::lunarGlassDefaults(),
        tuner::FlagSet::all(),
    };
    for (int bit = 0; bit < tuner::kFlagCount; ++bit)
        out.push_back(tuner::FlagSet::none().with(bit));
    out.push_back(tuner::FlagSet(0b01010101));
    out.push_back(tuner::FlagSet(0b10101010));
    out.push_back(tuner::FlagSet(0b11000011));
    return out;
}

void
expectBitIdentical(const ir::InterpResult &got,
                   const ir::InterpResult &want, const char *what)
{
    ASSERT_EQ(got.discarded, want.discarded) << what;
    ASSERT_EQ(got.executedInstructions, want.executedInstructions)
        << what;
    ASSERT_EQ(got.outputs.size(), want.outputs.size()) << what;
    for (const auto &[name, lanes] : want.outputs) {
        const auto &g = got.outputs.at(name);
        ASSERT_EQ(g.size(), lanes.size()) << what << " " << name;
        for (size_t k = 0; k < lanes.size(); ++k) {
            // EXPECT_EQ on doubles is exact — bit-identity, not
            // tolerance.
            EXPECT_EQ(g[k], lanes[k])
                << what << " " << name << "[" << k << "]";
        }
    }
}

TEST(InterpGolden, SlotEngineMatchesMapReferenceAcrossCorpus)
{
    for (const char *name : kShaders) {
        const corpus::CorpusShader *shader = corpus::findShader(name);
        ASSERT_NE(shader, nullptr) << name;
        glsl::CompiledShader cs =
            glsl::compileShader(shader->source, shader->defines);

        // A handful of probe environments: the framework default plus
        // perturbed fragment positions.
        std::vector<ir::InterpEnv> envs;
        envs.push_back(runtime::defaultEnvironmentCached(cs.interface));
        for (double p : {0.15, 0.85}) {
            ir::InterpEnv env = envs.front();
            for (auto &[k, v] : env.inputs) {
                for (size_t c = 0; c < v.size(); ++c)
                    v[c] = p + 0.1 * static_cast<double>(c);
            }
            envs.push_back(std::move(env));
        }

        for (const tuner::FlagSet &flags : sampleFlagSets()) {
            auto module = lower::lowerShader(cs);
            passes::optimize(*module, flags.toOptFlags());
            for (const ir::InterpEnv &env : envs) {
                auto fast = ir::interpret(*module, env);
                auto gold = ir::interpretReference(*module, env);
                expectBitIdentical(
                    fast, gold,
                    (std::string(name) + " " + flags.str()).c_str());
            }
        }
    }
}

TEST(InterpGolden, BatchedMatchesScalarOnEveryCorpusShaderAllCombos)
{
    // The acceptance pin for the batched engine: EVERY corpus shader,
    // EVERY combination of the FULL pass registry (walked through the
    // memoized combination tree, so each distinct optimised module is
    // checked once), with 4 probe lanes spanning the default
    // environment and perturbed inputs. Each distinct module gets one
    // batched run; a lane chosen by the module's fingerprint is then
    // re-run on the scalar slot engine and compared bit-for-bit —
    // outputs, discard flag, and dynamic instruction count. Across the
    // corpus the rotation covers all lanes many times over.
    passes::ScopedExtraPasses extras;
    constexpr size_t kLanes = 4;

    size_t modulesChecked = 0;
    for (const auto &shader : corpus::corpus()) {
        glsl::CompiledShader cs =
            glsl::compileShader(shader.source, shader.defines);
        auto base = lower::lowerShader(cs);

        ir::BatchEnv benv = ir::BatchEnv::broadcast(
            runtime::defaultEnvironmentCached(cs.interface), kLanes);
        const double perturb[kLanes] = {0.0, 0.15, 0.5, 0.85};
        for (size_t l = 1; l < kLanes; ++l) {
            for (auto &[name, in] : benv.inputs) {
                ir::LaneVector v(in.comps);
                for (size_t c = 0; c < in.comps; ++c)
                    v[c] = perturb[l] +
                           0.1 * static_cast<double>(c);
                benv.setLaneInput(name, l, v);
            }
        }
        std::vector<ir::InterpEnv> envs;
        for (size_t l = 0; l < kLanes; ++l)
            envs.push_back(benv.laneEnv(l));

        std::unordered_set<uint64_t> seen;
        passes::forEachFlagCombination(
            *base, [&](const passes::OptFlags &, const ir::Module &m,
                       uint64_t fp) {
                if (!seen.insert(fp).second)
                    return; // distinct modules only
                const ir::BatchResult batch =
                    ir::interpretBatch(m, benv);
                const size_t lane = static_cast<size_t>(fp % kLanes);
                expectBitIdentical(
                    batch.laneResult(lane),
                    ir::interpret(m, envs[lane]),
                    (shader.name + " lane " + std::to_string(lane))
                        .c_str());
                ++modulesChecked;
            });
    }
    // The walk must have produced a meaningful number of distinct
    // optimised modules across the corpus, or the pin is vacuous.
    EXPECT_GE(modulesChecked, 500u);
}

TEST(InterpGolden, ExploredVariantsMatchOnClonedModules)
{
    // The compile-once pipeline interprets clones; pin that a cloned
    // module's execution is bit-identical to the original's under both
    // engines.
    const corpus::CorpusShader &shader = corpus::motivatingExample();
    glsl::CompiledShader cs =
        glsl::compileShader(shader.source, shader.defines);
    auto base = lower::lowerShader(cs);
    const ir::InterpEnv &env =
        runtime::defaultEnvironmentCached(cs.interface);

    auto want = ir::interpretReference(*base, env);
    for (const tuner::FlagSet &flags : sampleFlagSets()) {
        auto clone = base->clone();
        passes::optimize(*clone, flags.toOptFlags());
        auto got = ir::interpret(*clone, env);
        // Optimised clones keep semantics up to FP reassociation;
        // the *unsafe* flags may legitimately change bits, so compare
        // only the safe sets bit-exactly.
        if (flags.has(tuner::kFpReassociate) ||
            flags.has(tuner::kDivToMul))
            continue;
        ASSERT_EQ(got.discarded, want.discarded);
        for (const auto &[name, lanes] : want.outputs) {
            const auto &g = got.outputs.at(name);
            ASSERT_EQ(g.size(), lanes.size());
            for (size_t k = 0; k < lanes.size(); ++k)
                EXPECT_NEAR(g[k], lanes[k],
                            1e-9 * (1.0 + std::fabs(lanes[k])))
                    << name << "[" << k << "] " << flags.str();
        }
    }
}

} // namespace
} // namespace gsopt
