/**
 * @file
 * Tests for AST -> IR lowering: structure, artefact reproduction
 * (scalarised matrices, splat vectorisation), inlining, loop
 * canonicalisation — all validated against the interpreter.
 */
#include <gtest/gtest.h>

#include "emit/offline.h"
#include "glsl/frontend.h"
#include "ir/dump.h"
#include "ir/interp.h"
#include "ir/verifier.h"
#include "ir/walk.h"
#include "lower/lower.h"

namespace gsopt {
namespace {

using ir::InterpEnv;

std::unique_ptr<ir::Module>
lowerOk(const std::string &src)
{
    auto m = emit::compileToIr(src);
    EXPECT_TRUE(ir::verify(*m).empty());
    return m;
}

double
outScalar(const ir::Module &m, const InterpEnv &env = {},
          const char *name = "c")
{
    auto r = ir::interpret(m, env);
    return r.outputs.at(name).at(0);
}

std::vector<double>
outVec(const ir::Module &m, const InterpEnv &env = {},
       const char *name = "c")
{
    return ir::interpret(m, env).outputs.at(name);
}

TEST(Lower, SimpleArithmetic)
{
    auto m = lowerOk("out float c; void main() { c = 2.0 * 3.0 + "
                     "1.0; }");
    EXPECT_DOUBLE_EQ(outScalar(*m), 7.0);
}

TEST(Lower, VectorSwizzles)
{
    auto m = lowerOk(R"(
        out vec4 c;
        void main() {
            vec4 v = vec4(1.0, 2.0, 3.0, 4.0);
            c = v.wzyx;
        }
    )");
    auto out = outVec(*m);
    EXPECT_DOUBLE_EQ(out[0], 4.0);
    EXPECT_DOUBLE_EQ(out[3], 1.0);
}

TEST(Lower, ScalarTimesVectorSplats)
{
    // Artefact III-C.b: the scalar operand must be vectorised via a
    // Construct before the multiply.
    auto m = lowerOk(R"(
        in float f;
        out vec4 c;
        void main() { c = vec4(1.0, 2.0, 3.0, 4.0) * f; }
    )");
    bool saw_splat_mul = false;
    ir::forEachInstr(m->body, [&](const ir::Instr &i) {
        if (i.op == ir::Opcode::Mul && i.type == ir::Type::vec(4) &&
            (i.operands[0]->op == ir::Opcode::Construct ||
             i.operands[1]->op == ir::Opcode::Construct))
            saw_splat_mul = true;
    });
    EXPECT_TRUE(saw_splat_mul);
    InterpEnv env;
    env.inputs["f"] = {2.0};
    EXPECT_DOUBLE_EQ(outVec(*m, env)[2], 6.0);
}

TEST(Lower, MatrixVectorMultiplyScalarises)
{
    // Artefact III-C.a: no matrix values survive in the IR.
    auto m = lowerOk(R"(
        uniform mat2 m;
        out vec4 c;
        void main() {
            vec2 v = m * vec2(1.0, 2.0);
            c = vec4(v, 0.0, 1.0);
        }
    )");
    ir::forEachInstr(m->body, [](const ir::Instr &i) {
        EXPECT_FALSE(i.type.isMatrix()) << ir::dumpInstr(i);
    });
    // m = [[1,3],[2,4]] col-major {1,3, 2,4}: m*v = (1*1+2*2, 3*1+4*2)
    InterpEnv env;
    env.uniforms["m"] = {1.0, 3.0, 2.0, 4.0};
    auto out = outVec(*m, env);
    EXPECT_DOUBLE_EQ(out[0], 5.0);
    EXPECT_DOUBLE_EQ(out[1], 11.0);
}

TEST(Lower, MatrixMatrixMultiply)
{
    auto m = lowerOk(R"(
        uniform mat2 a;
        out vec4 c;
        void main() {
            mat2 sq = a * a;
            c = vec4(sq[0], sq[1]);
        }
    )");
    InterpEnv env;
    env.uniforms["a"] = {1.0, 0.0, 0.0, 2.0}; // diag(1,2)
    auto out = outVec(*m, env);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[3], 4.0);
}

TEST(Lower, LocalMatrixStorageIsScalar)
{
    auto m = lowerOk(R"(
        out vec4 c;
        void main() {
            mat2 m = mat2(2.0);
            m[1] = vec2(5.0, 6.0);
            c = vec4(m[0].x, m[1].x, m[1].y, m[0].y);
        }
    )");
    auto out = outVec(*m);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 5.0);
    EXPECT_DOUBLE_EQ(out[2], 6.0);
    EXPECT_DOUBLE_EQ(out[3], 0.0);
}

TEST(Lower, CanonicalLoopRecognised)
{
    auto m = lowerOk(R"(
        out float c;
        void main() {
            float s = 0.0;
            for (int i = 0; i < 9; i++) { s += 0.125; }
            c = s;
        }
    )");
    bool found = false;
    ir::forEachNode(m->body, [&](ir::Node &n) {
        if (auto *l = ir::dyn_cast<ir::LoopNode>(&n)) {
            EXPECT_TRUE(l->canonical);
            EXPECT_EQ(l->tripCount(), 9);
            found = true;
        }
    });
    EXPECT_TRUE(found);
    EXPECT_DOUBLE_EQ(outScalar(*m), 9 * 0.125);
}

TEST(Lower, LessEqualLoopBound)
{
    auto m = lowerOk(R"(
        out float c;
        void main() {
            float s = 0.0;
            for (int i = 1; i <= 4; i += 1) { s += 1.0; }
            c = s;
        }
    )");
    ir::forEachNode(m->body, [&](ir::Node &n) {
        if (auto *l = ir::dyn_cast<ir::LoopNode>(&n)) {
            EXPECT_EQ(l->tripCount(), 4);
        }
    });
    EXPECT_DOUBLE_EQ(outScalar(*m), 4.0);
}

TEST(Lower, DynamicLoopFallsBackToGeneric)
{
    auto m = lowerOk(R"(
        uniform int n;
        out float c;
        void main() {
            float s = 0.0;
            for (int i = 0; i < n; i++) { s += 1.0; }
            c = s;
        }
    )");
    bool generic = false;
    ir::forEachNode(m->body, [&](ir::Node &n) {
        if (auto *l = ir::dyn_cast<ir::LoopNode>(&n))
            generic = !l->canonical;
    });
    EXPECT_TRUE(generic);
    InterpEnv env;
    env.uniforms["n"] = {3.0};
    EXPECT_DOUBLE_EQ(outScalar(*m, env), 3.0);
}

TEST(Lower, WhileLoop)
{
    auto m = lowerOk(R"(
        out float c;
        void main() {
            float x = 1.0;
            while (x < 10.0) { x = x * 2.0; }
            c = x;
        }
    )");
    EXPECT_DOUBLE_EQ(outScalar(*m), 16.0);
}

TEST(Lower, FunctionInlining)
{
    auto m = lowerOk(R"(
        out float c;
        float square(float x) { return x * x; }
        void main() { c = square(3.0) + square(4.0); }
    )");
    EXPECT_DOUBLE_EQ(outScalar(*m), 25.0);
    // No calls remain: every instruction is a primitive op.
    ir::forEachInstr(m->body, [](const ir::Instr &i) {
        (void)i; // all opcodes are primitives by construction
    });
}

TEST(Lower, NestedFunctionInlining)
{
    auto m = lowerOk(R"(
        out float c;
        float sq(float x) { return x * x; }
        float quad(float x) { return sq(sq(x)); }
        void main() { c = quad(2.0); }
    )");
    EXPECT_DOUBLE_EQ(outScalar(*m), 16.0);
}

TEST(Lower, InlinedFunctionWithLoop)
{
    auto m = lowerOk(R"(
        out float c;
        float sum_n(float step_v) {
            float s = 0.0;
            for (int i = 0; i < 4; i++) { s += step_v; }
            return s;
        }
        void main() { c = sum_n(1.0) + sum_n(2.0); }
    )");
    EXPECT_DOUBLE_EQ(outScalar(*m), 4.0 + 8.0);
}

TEST(Lower, RecursionRejected)
{
    EXPECT_THROW(
        emit::compileToIr("out float c; float f(float x) { return "
                          "f(x); } void main() { c = f(1.0); }"),
        CompileError);
}

TEST(Lower, ConstArrayBecomesConstData)
{
    auto m = lowerOk(R"(
        out float c;
        const float w[4] = float[](0.1, 0.2, 0.3, 0.4);
        void main() { c = w[1] + w[3]; }
    )");
    ir::Var *w = m->findVar("w");
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->kind, ir::VarKind::ConstArray);
    ASSERT_EQ(w->constInit.size(), 4u);
    EXPECT_NEAR(outScalar(*m), 0.6, 1e-12);
}

TEST(Lower, MutableArrayUsesElementStores)
{
    auto m = lowerOk(R"(
        in float x;
        out float c;
        void main() {
            float a[3] = float[](0.0, 0.0, 0.0);
            a[0] = x;
            a[2] = x * 2.0;
            c = a[0] + a[1] + a[2];
        }
    )");
    InterpEnv env;
    env.inputs["x"] = {2.0};
    EXPECT_DOUBLE_EQ(outScalar(*m, env), 6.0);
}

TEST(Lower, DynamicVectorIndexViaSelects)
{
    auto m = lowerOk(R"(
        uniform int k;
        out float c;
        void main() {
            vec4 v = vec4(10.0, 20.0, 30.0, 40.0);
            c = v[k];
        }
    )");
    InterpEnv env;
    env.uniforms["k"] = {2.0};
    EXPECT_DOUBLE_EQ(outScalar(*m, env), 30.0);
}

TEST(Lower, TernaryBecomesSelect)
{
    auto m = lowerOk(R"(
        in float x;
        out float c;
        void main() { c = x > 0.5 ? 2.0 : 3.0; }
    )");
    bool has_select = false, has_if = false;
    ir::forEachInstr(m->body, [&](const ir::Instr &i) {
        has_select |= i.op == ir::Opcode::Select;
    });
    ir::forEachNode(m->body, [&](ir::Node &n) {
        has_if |= n.kind() == ir::NodeKind::If;
    });
    EXPECT_TRUE(has_select);
    EXPECT_FALSE(has_if);
}

TEST(Lower, SwizzleAssignment)
{
    auto m = lowerOk(R"(
        out vec4 c;
        void main() {
            vec4 v = vec4(0.0);
            v.xy = vec2(1.0, 2.0);
            v.w = 9.0;
            c = v;
        }
    )");
    auto out = outVec(*m);
    EXPECT_DOUBLE_EQ(out[0], 1.0);
    EXPECT_DOUBLE_EQ(out[1], 2.0);
    EXPECT_DOUBLE_EQ(out[2], 0.0);
    EXPECT_DOUBLE_EQ(out[3], 9.0);
}

TEST(Lower, DiscardInBranch)
{
    auto m = lowerOk(R"(
        in float a;
        out vec4 c;
        void main() {
            if (a < 0.1) { discard; }
            c = vec4(1.0);
        }
    )");
    InterpEnv env;
    env.inputs["a"] = {0.05};
    EXPECT_TRUE(ir::interpret(*m, env).discarded);
    env.inputs["a"] = {0.5};
    EXPECT_FALSE(ir::interpret(*m, env).discarded);
}

TEST(Lower, TextureSampling)
{
    auto m = lowerOk(R"(
        uniform sampler2D tex;
        in vec2 uv;
        out vec4 c;
        void main() { c = texture(tex, uv); }
    )");
    InterpEnv env;
    env.inputs["uv"] = {0.25, 0.75};
    auto out = outVec(*m, env);
    auto expect = ir::defaultTexture(0.25, 0.75, 0.0);
    EXPECT_DOUBLE_EQ(out[0], expect[0]);
    EXPECT_DOUBLE_EQ(out[3], 1.0);
}

TEST(Lower, GlFragCoordInput)
{
    auto m = lowerOk(
        "out vec4 c; void main() { c = gl_FragCoord * 0.001; }");
    InterpEnv env;
    env.inputs["gl_FragCoord"] = {250.0, 100.0, 0.5, 1.0};
    EXPECT_DOUBLE_EQ(outVec(*m, env)[0], 0.25);
}

} // namespace
} // namespace gsopt
