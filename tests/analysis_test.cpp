/**
 * @file
 * Tests for the analysis module: the Fig-4a executable-LoC metric.
 */
#include <gtest/gtest.h>

#include "analysis/loc.h"

namespace gsopt::analysis {
namespace {

TEST(Loc, CountsExecutableOnly)
{
    const char *src = R"(
uniform sampler2D tex;
in vec2 uv;
out vec4 color;

// a comment line
void main() {
    vec4 c = texture(tex, uv);
    /* block comment */
    color = c * 2.0;
}
)";
    // Counted: "void main() {" (has content beyond brackets),
    // "vec4 c = ...", "color = ...". Declarations/comments/braces are
    // not.
    EXPECT_EQ(executableLines(src), 3);
}

TEST(Loc, IgnoresLoneBrackets)
{
    EXPECT_EQ(executableLines("{\n}\n(\n)\n;\n"), 0);
}

TEST(Loc, IgnoresBlankAndComments)
{
    EXPECT_EQ(executableLines("\n\n   \n// c\n/* multi\nline\n*/\n"),
              0);
}

TEST(Loc, MultiLineBlockCommentSpansLines)
{
    const char *src = "float a = 1.0; /* start\nstill comment\nend */ "
                      "float b = 2.0;\nfloat c = 3.0;\n";
    EXPECT_EQ(executableLines(src), 3);
}

TEST(Loc, UnusedFunctionsStillCount)
{
    // Paper: unused function definitions inflate the metric.
    const char *src = R"(
float unused_helper(float x) {
    return x * 2.0;
}
void main() {
    float y = 1.0;
}
)";
    EXPECT_EQ(executableLines(src), 4);
}

TEST(Loc, DeclarationLinesIgnored)
{
    const char *src = "uniform vec4 u;\nin vec2 uv;\nout vec4 c;\n"
                      "precision highp float;\nlayout(location = 0) "
                      "out vec4 o;\n#version 450\n";
    EXPECT_EQ(executableLines(src), 0);
}

} // namespace
} // namespace gsopt::analysis
