/**
 * @file
 * Unit tests for the IR: builder, verifier, walking/cloning utilities,
 * dumper, and the reference interpreter.
 */
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/dump.h"
#include "ir/interp.h"
#include "ir/ir.h"
#include "ir/verifier.h"
#include "ir/walk.h"

namespace gsopt::ir {
namespace {

TEST(IrBuilder, BuildsVerifiableModule)
{
    Module m;
    Var *out = m.newVar("color", Type::vec(4), VarKind::Output);
    IrBuilder b(m);
    Instr *half = b.constFloat(0.5);
    Instr *v = b.construct(Type::vec(4), {half});
    b.store(out, v);
    EXPECT_TRUE(verify(m).empty());
    EXPECT_EQ(m.instructionCount(), 3u);
}

TEST(IrBuilder, BinaryResultTypes)
{
    Module m;
    IrBuilder b(m);
    Instr *a = b.constSplat(Type::vec(3), 1.0);
    Instr *c = b.constSplat(Type::vec(3), 2.0);
    EXPECT_EQ(b.binary(Opcode::Add, a, c)->type, Type::vec(3));
    EXPECT_EQ(b.binary(Opcode::Dot, a, c)->type, Type::floatTy());
    EXPECT_EQ(b.binary(Opcode::Lt, b.constFloat(1), b.constFloat(2))
                  ->type,
              Type::boolTy());
    EXPECT_EQ(b.unary(Opcode::Length, a)->type, Type::floatTy());
    EXPECT_EQ(b.swizzle(a, {0, 1})->type, Type::vec(2));
    EXPECT_EQ(b.swizzle(a, {2})->type, Type::floatTy());
}

TEST(Verifier, CatchesUseBeforeDef)
{
    Module m;
    IrBuilder b(m);
    // Manually create an instruction whose operand comes later.
    Instr *x = b.constFloat(1.0);
    Instr *y = b.unary(Opcode::Neg, x);
    // Swap order inside the block to break dominance.
    auto *block = dyn_cast<Block>(m.body.nodes[0].get());
    ASSERT_NE(block, nullptr);
    std::swap(block->instrs[0], block->instrs[1]);
    (void)y;
    EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, CatchesStoreToReadOnly)
{
    Module m;
    Var *u = m.newVar("u", Type::floatTy(), VarKind::Uniform);
    IrBuilder b(m);
    b.store(u, b.constFloat(0.0));
    EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, CatchesBranchValueEscape)
{
    Module m;
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder b(m);
    Instr *cond = b.constBool(true);
    IfNode *ifn = b.createIf(cond);
    b.pushRegion(&ifn->thenRegion);
    Instr *inner = b.constFloat(1.0);
    b.popRegion();
    b.store(out, inner); // illegal: value defined in branch
    EXPECT_FALSE(verify(m).empty());
}

TEST(Verifier, CatchesTypeMismatch)
{
    Module m;
    IrBuilder b(m);
    Instr *a = b.constFloat(1.0);
    Instr *v = b.constSplat(Type::vec(4), 1.0);
    Instr *bad = b.emit(Opcode::Add, Type::vec(4), {a, v});
    (void)bad;
    EXPECT_FALSE(verify(m).empty());
}

TEST(Walk, CloneRemapsOperands)
{
    Module m;
    IrBuilder b(m);
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    LoopNode *loop = b.createLoop();
    loop->canonical = true;
    loop->counter = m.newVar("i", Type::intTy(), VarKind::Local);
    loop->init = 0;
    loop->limit = 3;
    loop->step = 1;
    b.pushRegion(&loop->body);
    Instr *x = b.constFloat(2.0);
    Instr *y = b.unary(Opcode::Neg, x);
    b.store(out, y);
    b.popRegion();

    Region clone;
    ValueMap map;
    cloneRegionInto(loop->body, clone, m, map);
    ASSERT_EQ(clone.instructionCount(), 3u);
    // The cloned Neg must reference the cloned Const, not the original.
    const Block *cb = dyn_cast<Block>(clone.nodes[0].get());
    ASSERT_NE(cb, nullptr);
    EXPECT_EQ(cb->instrs[1]->operands[0], cb->instrs[0]);
    EXPECT_NE(cb->instrs[0], x);
}

TEST(Walk, ReplaceAllUses)
{
    Module m;
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder b(m);
    Instr *a = b.constFloat(1.0);
    Instr *c = b.constFloat(2.0);
    Instr *n = b.unary(Opcode::Neg, a);
    b.store(out, n);
    replaceAllUses(m, a, c);
    EXPECT_EQ(n->operands[0], c);
}

TEST(Walk, SimplifyMergesAdjacentBlocks)
{
    Module m;
    auto b1 = std::make_unique<Block>();
    auto b2 = std::make_unique<Block>();
    Instr *i1 = m.newInstr();
    i1->op = Opcode::Discard;
    i1->type = Type::voidTy();
    b2->instrs.push_back(i1);
    m.body.nodes.push_back(std::move(b1)); // empty block
    m.body.nodes.push_back(std::move(b2));
    EXPECT_TRUE(simplifyRegionStructure(m.body));
    EXPECT_EQ(m.body.nodes.size(), 1u);
}

TEST(Dump, ContainsOpcodeAndVars)
{
    Module m;
    Var *out = m.newVar("color", Type::vec(4), VarKind::Output);
    IrBuilder b(m);
    b.store(out, b.constSplat(Type::vec(4), 1.0));
    std::string text = dump(m);
    EXPECT_NE(text.find("var @color : vec4 out"), std::string::npos);
    EXPECT_NE(text.find("store"), std::string::npos);
}

// ------------------------------------------------------------- clone

/** A module exercising every node kind: block, if, canonical loop. */
std::unique_ptr<Module>
buildCloneFixture()
{
    auto m = std::make_unique<Module>();
    Var *in = m->newVar("x", Type::floatTy(), VarKind::Input);
    Var *acc = m->newVar("acc", Type::floatTy(), VarKind::Local);
    Var *out = m->newVar("o", Type::vec(2), VarKind::Output);
    IrBuilder b(*m);
    b.store(acc, b.constFloat(0.0));
    LoopNode *loop = b.createLoop();
    loop->canonical = true;
    loop->counter = m->newVar("i", Type::intTy(), VarKind::Local);
    loop->init = 0;
    loop->limit = 4;
    loop->step = 1;
    b.pushRegion(&loop->body);
    Instr *iv = b.construct(Type::floatTy(), {b.load(loop->counter)});
    b.store(acc, b.binary(Opcode::Add, b.load(acc), iv));
    b.popRegion();
    Instr *cond = b.binary(Opcode::Gt, b.load(in), b.constFloat(0.5));
    IfNode *ifn = b.createIf(cond);
    b.pushRegion(&ifn->thenRegion);
    b.store(acc, b.binary(Opcode::Mul, b.load(acc), b.constFloat(2.0)));
    b.popRegion();
    b.store(out, b.construct(Type::vec(2), {b.load(acc)}));
    return m;
}

TEST(Clone, VerifiesAndMatchesFingerprint)
{
    auto m = buildCloneFixture();
    auto c = m->clone();
    EXPECT_TRUE(verify(*c).empty());
    EXPECT_EQ(c->instructionCount(), m->instructionCount());
    EXPECT_EQ(c->idBound(), m->idBound());
    EXPECT_EQ(fingerprint(*c), fingerprint(*m));
}

TEST(Clone, OwnsItsReferences)
{
    auto m = buildCloneFixture();
    auto c = m->clone();
    // No instruction or var in the clone may point into the original.
    std::unordered_map<const Instr *, bool> mine;
    forEachInstr(c->body, [&](const Instr &i) { mine[&i] = true; });
    forEachInstr(c->body, [&](const Instr &i) {
        for (const Instr *op : i.operands)
            EXPECT_TRUE(mine.count(op));
        if (i.var) {
            bool in_clone = false;
            for (const Var *v : c->vars)
                in_clone |= v == i.var;
            EXPECT_TRUE(in_clone);
        }
    });
}

TEST(Clone, InterpMatchesOriginal)
{
    auto m = buildCloneFixture();
    auto c = m->clone();
    for (double x : {0.1, 0.9}) {
        InterpEnv env;
        env.inputs["x"] = {x};
        auto a = interpret(*m, env);
        auto b = interpret(*c, env);
        ASSERT_EQ(a.outputs.size(), b.outputs.size());
        for (const auto &[name, lanes] : a.outputs) {
            const auto &other = b.outputs.at(name);
            ASSERT_EQ(lanes.size(), other.size());
            for (size_t k = 0; k < lanes.size(); ++k)
                EXPECT_EQ(lanes[k], other[k]);
        }
    }
}

TEST(Clone, MutatingCloneLeavesOriginalUntouched)
{
    auto m = buildCloneFixture();
    const size_t before = m->instructionCount();
    const uint64_t fp_before = fingerprint(*m);
    auto c = m->clone();

    // Hack the clone: rewrite its first constant and drop the if-node.
    forEachInstr(c->body, [](Instr &i) {
        if (i.op == Opcode::Const && !i.constData.empty())
            i.constData[0] = 42.0;
    });
    eraseInstrsIf(c->body, [](const Instr &i) {
        return i.op == Opcode::StoreVar;
    });
    EXPECT_EQ(m->instructionCount(), before);
    EXPECT_EQ(fingerprint(*m), fp_before);
    EXPECT_NE(fingerprint(*c), fp_before);

    InterpEnv env;
    env.inputs["x"] = {0.9};
    EXPECT_DOUBLE_EQ(interpret(*m, env).outputs.at("o")[0],
                     (0.0 + 1 + 2 + 3) * 2.0);
}

// ------------------------------------------------------- fingerprint

TEST(Fingerprint, InsensitiveToIdHistory)
{
    // Two modules with identical structure but different id histories
    // (builder scratch work) must fingerprint identically.
    Module a;
    {
        Var *out = a.newVar("o", Type::floatTy(), VarKind::Output);
        IrBuilder b(a);
        b.store(out, b.constFloat(1.5));
    }
    Module b2;
    {
        b2.nextId(); // burn ids so the structural twins differ
        b2.nextId();
        Var *out = b2.newVar("o", Type::floatTy(), VarKind::Output);
        IrBuilder b(b2);
        b.store(out, b.constFloat(1.5));
    }
    EXPECT_EQ(fingerprint(a), fingerprint(b2));
}

TEST(Fingerprint, SensitiveToStructure)
{
    Module a;
    Var *oa = a.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder ba(a);
    ba.store(oa, ba.constFloat(1.5));

    Module b;
    Var *ob = b.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder bb(b);
    bb.store(ob, bb.constFloat(2.5));

    EXPECT_NE(fingerprint(a), fingerprint(b));
}

// ----------------------------------------------------------- interp

TEST(Interp, EvaluatesArithmetic)
{
    Module m;
    Var *out = m.newVar("o", Type::vec(2), VarKind::Output);
    IrBuilder b(m);
    Instr *v = b.constVec(Type::vec(2), {3.0, 4.0});
    Instr *len = b.unary(Opcode::Length, v);
    Instr *splat = b.construct(Type::vec(2), {len});
    b.store(out, b.binary(Opcode::Mul, v, splat));
    auto r = interpret(m, {});
    ASSERT_EQ(r.outputs.at("o").size(), 2u);
    EXPECT_DOUBLE_EQ(r.outputs.at("o")[0], 15.0);
    EXPECT_DOUBLE_EQ(r.outputs.at("o")[1], 20.0);
}

TEST(Interp, CanonicalLoopAccumulates)
{
    Module m;
    Var *acc = m.newVar("acc", Type::floatTy(), VarKind::Local);
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder b(m);
    b.store(acc, b.constFloat(0.0));
    LoopNode *loop = b.createLoop();
    loop->canonical = true;
    loop->counter = m.newVar("i", Type::intTy(), VarKind::Local);
    loop->init = 0;
    loop->limit = 5;
    loop->step = 1;
    b.pushRegion(&loop->body);
    Instr *iv = b.load(loop->counter);
    Instr *fiv = b.construct(Type::floatTy(), {iv});
    b.store(acc, b.binary(Opcode::Add, b.load(acc), fiv));
    b.popRegion();
    b.store(out, b.load(acc));
    auto r = interpret(m, {});
    EXPECT_DOUBLE_EQ(r.outputs.at("o")[0], 0 + 1 + 2 + 3 + 4);
}

TEST(Interp, IfTakesCorrectBranch)
{
    Module m;
    Var *in = m.newVar("x", Type::floatTy(), VarKind::Input);
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder b(m);
    Instr *cond = b.binary(Opcode::Gt, b.load(in), b.constFloat(0.0));
    IfNode *ifn = b.createIf(cond);
    b.pushRegion(&ifn->thenRegion);
    b.store(out, b.constFloat(1.0));
    b.popRegion();
    b.pushRegion(&ifn->elseRegion);
    b.store(out, b.constFloat(-1.0));
    b.popRegion();

    InterpEnv env;
    env.inputs["x"] = {5.0};
    EXPECT_DOUBLE_EQ(interpret(m, env).outputs.at("o")[0], 1.0);
    env.inputs["x"] = {-5.0};
    EXPECT_DOUBLE_EQ(interpret(m, env).outputs.at("o")[0], -1.0);
}

TEST(Interp, DiscardStopsExecution)
{
    Module m;
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder b(m);
    b.store(out, b.constFloat(1.0));
    b.emit(Opcode::Discard, Type::voidTy());
    b.store(out, b.constFloat(2.0));
    auto r = interpret(m, {});
    EXPECT_TRUE(r.discarded);
    EXPECT_DOUBLE_EQ(r.outputs.at("o")[0], 1.0);
}

TEST(Interp, DefaultsAreHalf)
{
    Module m;
    Var *u = m.newVar("gain", Type::floatTy(), VarKind::Uniform);
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder b(m);
    b.store(out, b.load(u));
    EXPECT_DOUBLE_EQ(interpret(m, {}).outputs.at("o")[0], 0.5);
}

TEST(Interp, TextureIsSmoothAndDeterministic)
{
    auto a = defaultTexture(0.25, 0.5, 0.0);
    auto b = defaultTexture(0.25, 0.5, 0.0);
    auto c = defaultTexture(0.2501, 0.5, 0.0);
    EXPECT_EQ(a, b);
    EXPECT_NEAR(a[0], c[0], 0.01);
    for (double ch : a) {
        EXPECT_GE(ch, 0.0);
        EXPECT_LE(ch, 1.0);
    }
}

TEST(Interp, ConstArrayLoads)
{
    Module m;
    Var *arr = m.newVar("w", Type::floatTy().array(3),
                        VarKind::ConstArray);
    arr->constInit = {10.0, 20.0, 30.0};
    Var *out = m.newVar("o", Type::floatTy(), VarKind::Output);
    IrBuilder b(m);
    Instr *idx = b.constInt(2);
    b.store(out, b.loadElem(arr, idx));
    EXPECT_DOUBLE_EQ(interpret(m, {}).outputs.at("o")[0], 30.0);
}

} // namespace
} // namespace gsopt::ir
