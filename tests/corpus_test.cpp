/**
 * @file
 * Corpus population tests: every shader compiles, lowers, executes, and
 * round-trips; the population matches the properties the paper reports
 * for GFXBench 4.0 (Section V): power-law sizes, max ~300 lines,
 * majority small, loops uncommon, übershader families.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <set>

#include "analysis/loc.h"
#include "corpus/corpus.h"
#include "emit/offline.h"
#include "glsl/frontend.h"
#include "ir/interp.h"
#include "ir/walk.h"
#include "lower/lower.h"
#include "runtime/framework.h"

namespace gsopt::corpus {
namespace {

TEST(Corpus, SizeAndUniqueNames)
{
    const auto &all = corpus();
    EXPECT_GE(all.size(), 90u);
    std::set<std::string> names;
    for (const auto &s : all)
        EXPECT_TRUE(names.insert(s.name).second)
            << "duplicate " << s.name;
}

TEST(Corpus, MotivatingExamplePresent)
{
    const CorpusShader &m = motivatingExample();
    EXPECT_EQ(m.name, "blur/weighted9");
    EXPECT_NE(m.source.find("weightTotal"), std::string::npos);
    EXPECT_NE(m.source.find("3.0"), std::string::npos);
    EXPECT_NE(m.source.find("ambient"), std::string::npos);
}

class CorpusEach : public ::testing::TestWithParam<size_t>
{
};

/** Bit pattern of a double — lets the tile checks assert true
 * bit-identity even when a sum is NaN (NaN != NaN under operator==,
 * but the engines must still agree on the exact bits). */
uint64_t
bits(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

TEST_P(CorpusEach, CompilesLowersExecutes)
{
    const CorpusShader &s = corpus()[GetParam()];
    glsl::CompiledShader cs = glsl::compileShader(s.source, s.defines);
    ASSERT_FALSE(cs.interface.outputs.empty()) << s.name;
    auto module = lower::lowerShader(cs);
    const ir::InterpEnv &env =
        runtime::defaultEnvironmentCached(cs.interface);
    auto result = ir::interpret(*module, env);
    // Outputs must be finite (shader executes meaningfully with the
    // framework's auto-initialised inputs), unless discarded.
    if (!result.discarded) {
        for (const auto &[name, lanes] : result.outputs) {
            for (double v : lanes)
                EXPECT_TRUE(std::isfinite(v)) << s.name << "/" << name;
        }
    }
}

TEST_P(CorpusEach, TileExecutionBatchedMatchesScalar)
{
    // The bulk functional check: an 8x6 tile sweeps the shader's
    // varyings across the unit square, once per fragment on the scalar
    // engine and once through the batched SIMT engine. Everything the
    // tile aggregates — fragment/discard counts, the dynamic
    // instruction total, and row-major per-component output sums —
    // must match bit-for-bit.
    const CorpusShader &s = corpus()[GetParam()];
    glsl::CompiledShader cs = glsl::compileShader(s.source, s.defines);
    auto module = lower::lowerShader(cs);

    runtime::TileOptions scalarOpts;
    scalarOpts.width = 8;
    scalarOpts.height = 6;
    scalarOpts.batchWidth = 0; // scalar reference path
    const runtime::TileResult want =
        runtime::interpretTile(*module, cs.interface, scalarOpts);
    EXPECT_EQ(want.fragments, 48u) << s.name;

    for (size_t w : {size_t{8}, size_t{16}}) {
        runtime::TileOptions opts = scalarOpts;
        opts.batchWidth = w;
        const runtime::TileResult got =
            runtime::interpretTile(*module, cs.interface, opts);
        EXPECT_EQ(got.fragments, want.fragments) << s.name;
        EXPECT_EQ(got.discardedFragments, want.discardedFragments)
            << s.name;
        EXPECT_EQ(got.executedInstructions, want.executedInstructions)
            << s.name;
        EXPECT_EQ(got.allFinite, want.allFinite) << s.name;
        ASSERT_EQ(got.outputSums.size(), want.outputSums.size())
            << s.name;
        for (const auto &[name, sums] : want.outputSums) {
            const auto &g = got.outputSums.at(name);
            ASSERT_EQ(g.size(), sums.size()) << s.name << "/" << name;
            for (size_t c = 0; c < sums.size(); ++c)
                EXPECT_EQ(bits(g[c]), bits(sums[c]))
                    << s.name << "/" << name << "[" << c << "] W=" << w
                    << " got " << g[c] << " want " << sums[c];
        }
    }
}

TEST_P(CorpusEach, SurvivesFullOptimizationPipeline)
{
    const CorpusShader &s = corpus()[GetParam()];
    std::string text = emit::optimizeShaderSource(
        s.source, passes::OptFlags::all(), s.defines);
    // Driver path must accept the optimized output.
    auto module = emit::compileToIr(text);
    EXPECT_GT(module->instructionCount(), 0u) << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, CorpusEach,
    ::testing::Range(size_t{0}, corpus().size()),
    [](const ::testing::TestParamInfo<size_t> &info) {
        std::string name = corpus()[info.param].name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(CorpusPopulation, SizeDistributionMatchesPaper)
{
    // Paper Fig 4a: most shaders < 50 preprocessed lines, max ~300,
    // power-law-like shape.
    int small = 0, total = 0, max_lines = 0;
    for (const auto &s : corpus()) {
        glsl::CompiledShader cs =
            glsl::compileShader(s.source, s.defines);
        int lines = analysis::executableLines(cs.preprocessedText);
        max_lines = std::max(max_lines, lines);
        small += lines < 50;
        ++total;
    }
    EXPECT_GT(small * 2, total) << "majority must be <50 lines";
    EXPECT_LE(max_lines, 320);
    EXPECT_GE(max_lines, 60) << "need a long tail";
}

TEST(CorpusPopulation, LoopsAreUncommon)
{
    // Paper V-A: "Loops are surprisingly uncommon in these shaders."
    int with_loops = 0, total = 0;
    for (const auto &s : corpus()) {
        auto module = emit::compileToIr(s.source, s.defines);
        bool has_loop = false;
        ir::forEachNode(module->body, [&](ir::Node &n) {
            has_loop |= n.kind() == ir::NodeKind::Loop;
        });
        with_loops += has_loop;
        ++total;
    }
    EXPECT_LT(with_loops * 3, total)
        << "no more than a third of shaders may contain loops";
}

TEST(CorpusPopulation, UbershaderFamiliesShareCode)
{
    // Members of the pbr family must share their base source and
    // differ only in defines (paper IV-A).
    std::map<std::string, std::set<std::string>> family_sources;
    for (const auto &s : corpus())
        family_sources[s.family].insert(s.source);
    ASSERT_TRUE(family_sources.count("pbr"));
    EXPECT_EQ(family_sources["pbr"].size(), 1u);
    // And at least 10 pbr variants exist.
    int pbr_count = 0;
    for (const auto &s : corpus())
        pbr_count += s.family == "pbr";
    EXPECT_GE(pbr_count, 10);
}

TEST(CorpusPopulation, FamilyVariantsDiffer)
{
    // Different defines must yield different preprocessed text.
    const CorpusShader *base = findShader("pbr/base");
    const CorpusShader *full = findShader("pbr/full");
    ASSERT_NE(base, nullptr);
    ASSERT_NE(full, nullptr);
    glsl::CompiledShader a =
        glsl::compileShader(base->source, base->defines);
    glsl::CompiledShader b =
        glsl::compileShader(full->source, full->defines);
    EXPECT_LT(a.preprocessedText.size(), b.preprocessedText.size());
}

} // namespace
} // namespace gsopt::corpus
