/**
 * @file
 * Unit tests for the GLSL front end: lexer, preprocessor, parser,
 * semantic analysis, and printer round-tripping.
 */
#include <gtest/gtest.h>

#include "glsl/frontend.h"
#include "glsl/lexer.h"
#include "glsl/parser.h"
#include "glsl/printer.h"
#include "glsl/type.h"

namespace gsopt::glsl {
namespace {

// ---------------------------------------------------------------- types

TEST(Type, Spellings)
{
    EXPECT_EQ(Type::vec(3).str(), "vec3");
    EXPECT_EQ(Type::mat(4).str(), "mat4");
    EXPECT_EQ(Type::floatTy().str(), "float");
    EXPECT_EQ(Type::ivec(2).str(), "ivec2");
    EXPECT_EQ(Type::bvec(4).str(), "bvec4");
    EXPECT_EQ(Type::vec(4).array(9).str(), "vec4[9]");
    EXPECT_EQ(Type::sampler2D().str(), "sampler2D");
}

TEST(Type, KeywordRoundTrip)
{
    for (const char *name :
         {"float", "int", "bool", "vec2", "vec3", "vec4", "ivec3",
          "bvec2", "mat2", "mat3", "mat4", "sampler2D"}) {
        EXPECT_TRUE(isTypeKeyword(name)) << name;
        EXPECT_EQ(typeFromKeyword(name).str(), name);
    }
    EXPECT_FALSE(isTypeKeyword("vec5"));
    EXPECT_FALSE(isTypeKeyword("banana"));
}

TEST(Type, ComponentCounts)
{
    EXPECT_EQ(Type::floatTy().componentCount(), 1);
    EXPECT_EQ(Type::vec(3).componentCount(), 3);
    EXPECT_EQ(Type::mat(3).componentCount(), 9);
    EXPECT_TRUE(Type::vec(2).isVector());
    EXPECT_TRUE(Type::mat(2).isMatrix());
    EXPECT_FALSE(Type::mat(2).isVector());
    EXPECT_TRUE(Type::floatTy().isScalar());
}

// ---------------------------------------------------------------- lexer

std::vector<Token>
lexOk(const std::string &src)
{
    DiagEngine diags;
    auto toks = lex(src, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    return toks;
}

TEST(Lexer, NumbersAndSuffixes)
{
    auto t = lexOk("1 2.5 .5 3. 1e3 2.5e-2 7f");
    ASSERT_EQ(t.size(), 8u); // 7 tokens + End
    EXPECT_EQ(t[0].kind, TokKind::IntLit);
    EXPECT_EQ(t[0].intValue, 1);
    EXPECT_EQ(t[1].kind, TokKind::FloatLit);
    EXPECT_DOUBLE_EQ(t[1].floatValue, 2.5);
    EXPECT_EQ(t[2].kind, TokKind::FloatLit);
    EXPECT_DOUBLE_EQ(t[2].floatValue, 0.5);
    EXPECT_EQ(t[3].kind, TokKind::FloatLit);
    EXPECT_EQ(t[4].kind, TokKind::FloatLit);
    EXPECT_DOUBLE_EQ(t[4].floatValue, 1000.0);
    EXPECT_DOUBLE_EQ(t[5].floatValue, 0.025);
    EXPECT_EQ(t[6].kind, TokKind::FloatLit);
}

TEST(Lexer, OperatorsAndComments)
{
    auto t = lexOk("a += b; // comment\n/* block\n */ c ++ <= &&");
    EXPECT_EQ(t[0].text, "a");
    EXPECT_EQ(t[1].kind, TokKind::PlusAssign);
    EXPECT_EQ(t[4].text, "c");
    EXPECT_EQ(t[5].kind, TokKind::PlusPlus);
    EXPECT_EQ(t[6].kind, TokKind::LessEq);
    EXPECT_EQ(t[7].kind, TokKind::AmpAmp);
}

TEST(Lexer, TracksLocations)
{
    auto t = lexOk("a\n  b");
    EXPECT_EQ(t[0].loc.line, 1);
    EXPECT_EQ(t[1].loc.line, 2);
    EXPECT_EQ(t[1].loc.column, 3);
}

TEST(Lexer, RejectsBadChars)
{
    DiagEngine diags;
    lex("a @ b", diags);
    EXPECT_TRUE(diags.hasErrors());
}

// -------------------------------------------------------- preprocessor

std::string
ppOk(const std::string &src,
     const std::map<std::string, std::string> &defs = {})
{
    DiagEngine diags;
    auto r = preprocess(src, defs, diags);
    EXPECT_FALSE(diags.hasErrors()) << diags.str();
    return r.text;
}

TEST(Preprocessor, ObjectMacros)
{
    EXPECT_EQ(ppOk("#define N 9\nint x = N;"), "int x = 9;\n");
}

TEST(Preprocessor, FunctionMacros)
{
    std::string out =
        ppOk("#define SQ(x) ((x)*(x))\nfloat y = SQ(a + b);");
    EXPECT_NE(out.find("(((a + b))*((a + b)))"), std::string::npos);
}

TEST(Preprocessor, NestedMacroExpansion)
{
    std::string out = ppOk("#define A B\n#define B 3\nint x = A;");
    EXPECT_EQ(out, "int x = 3;\n");
}

TEST(Preprocessor, IfdefBranches)
{
    std::string src = "#ifdef FEATURE\nfloat a;\n#else\nfloat b;\n#endif";
    EXPECT_EQ(ppOk(src), "float b;\n");
    EXPECT_EQ(ppOk(src, {{"FEATURE", ""}}), "float a;\n");
}

TEST(Preprocessor, IfExpressionsAndElif)
{
    std::string src = "#define LEVEL 2\n"
                      "#if LEVEL >= 3\nfloat hi;\n"
                      "#elif LEVEL == 2\nfloat mid;\n"
                      "#else\nfloat lo;\n#endif";
    EXPECT_EQ(ppOk(src), "float mid;\n");
}

TEST(Preprocessor, DefinedOperator)
{
    std::string src = "#if defined(A) && !defined(B)\nok;\n#endif";
    EXPECT_EQ(ppOk(src, {{"A", ""}}), "ok;\n");
    EXPECT_EQ(ppOk(src, {{"A", ""}, {"B", ""}}), "");
}

TEST(Preprocessor, NestedConditionals)
{
    std::string src = "#ifdef A\n#ifdef B\nab;\n#else\na;\n#endif\n#endif";
    EXPECT_EQ(ppOk(src, {{"A", ""}, {"B", ""}}), "ab;\n");
    EXPECT_EQ(ppOk(src, {{"A", ""}}), "a;\n");
    EXPECT_EQ(ppOk(src), "");
}

TEST(Preprocessor, VersionCaptured)
{
    DiagEngine diags;
    auto r = preprocess("#version 450 core\nfloat x;", {}, diags);
    EXPECT_EQ(r.version, 450);
    EXPECT_EQ(r.text, "float x;\n");
}

TEST(Preprocessor, LineContinuation)
{
    EXPECT_EQ(ppOk("#define M 1 + \\\n2\nint x = M;"),
              "int x = 1 + 2;\n");
}

TEST(Preprocessor, UndefAndRedefine)
{
    std::string src = "#define X 1\n#undef X\n#ifdef X\nyes;\n#else\n"
                      "no;\n#endif";
    EXPECT_EQ(ppOk(src), "no;\n");
}

TEST(Preprocessor, ErrorsOnUnterminatedIf)
{
    DiagEngine diags;
    preprocess("#ifdef A\nx;\n", {}, diags);
    EXPECT_TRUE(diags.hasErrors());
}

// --------------------------------------------------------------- parser

CompiledShader
feOk(const std::string &src,
     const std::map<std::string, std::string> &defs = {})
{
    return compileShader(src, defs);
}

const char *kMinimal = R"(
out vec4 fragColor;
void main() {
    fragColor = vec4(1.0);
}
)";

TEST(Parser, MinimalShader)
{
    auto cs = feOk(kMinimal);
    ASSERT_EQ(cs.ast.functions.size(), 1u);
    EXPECT_EQ(cs.ast.functions[0].name, "main");
    ASSERT_EQ(cs.ast.globals.size(), 1u);
    EXPECT_EQ(cs.ast.globals[0].qual, Qualifier::Out);
}

TEST(Parser, Precedence)
{
    auto cs = feOk("out vec4 c; void main() { float x = 1.0 + 2.0 * "
                   "3.0; c = vec4(x); }");
    const Stmt &decl = *cs.ast.functions[0].body->body[0];
    ASSERT_EQ(decl.kind, StmtKind::Decl);
    EXPECT_EQ(printExpr(*decl.rhs), "1.0 + 2.0 * 3.0");
}

TEST(Parser, ParensPreserved)
{
    auto cs = feOk("out vec4 c; void main() { float x = (1.0 + 2.0) * "
                   "3.0; c = vec4(x); }");
    const Stmt &decl = *cs.ast.functions[0].body->body[0];
    EXPECT_EQ(printExpr(*decl.rhs), "(1.0 + 2.0) * 3.0");
}

TEST(Parser, ForLoopWithIncrement)
{
    auto cs = feOk(R"(
        out vec4 c;
        void main() {
            float sum = 0.0;
            for (int i = 0; i < 9; i++) { sum += 1.0; }
            c = vec4(sum);
        }
    )");
    const Stmt &loop = *cs.ast.functions[0].body->body[1];
    ASSERT_EQ(loop.kind, StmtKind::For);
    ASSERT_NE(loop.init, nullptr);
    ASSERT_NE(loop.cond, nullptr);
    ASSERT_NE(loop.step, nullptr);
    EXPECT_EQ(loop.step->kind, StmtKind::Assign);
    EXPECT_EQ(loop.step->assignOp, AssignOp::AddAssign);
}

TEST(Parser, ArrayConstructorsAndIndexing)
{
    auto cs = feOk(R"(
        out vec4 c;
        const vec4 weights[3] = vec4[](vec4(0.1), vec4(0.2), vec4(0.3));
        void main() {
            c = weights[0] + weights[2];
        }
    )");
    EXPECT_EQ(cs.ast.globals[1].type.arraySize, 3);
    ASSERT_NE(cs.ast.globals[1].init, nullptr);
    EXPECT_EQ(cs.ast.globals[1].init->kind, ExprKind::Construct);
}

TEST(Parser, UnsizedArrayGetsSizeFromInit)
{
    auto cs = feOk(R"(
        out vec4 c;
        void main() {
            const float w[] = float[](0.1, 0.2, 0.3, 0.4);
            c = vec4(w[0]);
        }
    )");
    const Stmt &decl = *cs.ast.functions[0].body->body[0];
    EXPECT_EQ(decl.declType.arraySize, 4);
}

TEST(Parser, TernaryAndSwizzle)
{
    auto cs = feOk(R"(
        in vec2 uv;
        out vec4 c;
        void main() {
            float v = uv.x > 0.5 ? uv.y : 1.0 - uv.y;
            c = vec4(uv.xy, v, 1.0).zyxw;
        }
    )");
    const Stmt &assign = *cs.ast.functions[0].body->body[1];
    EXPECT_EQ(assign.rhs->kind, ExprKind::Member);
    EXPECT_EQ(assign.rhs->name, "zyxw");
    EXPECT_EQ(assign.rhs->type.str(), "vec4");
}

TEST(Parser, LayoutAndPrecisionIgnored)
{
    auto cs = feOk(R"(
        precision highp float;
        layout(location = 0) out highp vec4 color;
        uniform lowp sampler2D tex;
        in mediump vec2 uv;
        void main() { color = texture(tex, uv); }
    )");
    EXPECT_EQ(cs.interface.outputs.size(), 1u);
    EXPECT_EQ(cs.interface.uniforms.size(), 1u);
    EXPECT_EQ(cs.interface.inputs.size(), 1u);
}

TEST(Parser, UserFunctions)
{
    auto cs = feOk(R"(
        out vec4 c;
        float half_of(float x) { return x * 0.5; }
        void main() { c = vec4(half_of(3.0)); }
    )");
    ASSERT_EQ(cs.ast.functions.size(), 2u);
    EXPECT_EQ(cs.ast.functions[0].name, "half_of");
}

TEST(Parser, MultipleDeclarators)
{
    auto cs = feOk("out vec4 c; void main() { float a = 1.0, b = 2.0; "
                   "c = vec4(a + b); }");
    // Declarator list expands to a block of two decls.
    const Stmt &first = *cs.ast.functions[0].body->body[0];
    EXPECT_EQ(first.kind, StmtKind::Block);
    EXPECT_EQ(first.body.size(), 2u);
}

TEST(Parser, RejectsBreak)
{
    DiagEngine diags;
    auto r = tryCompileShader(
        "out vec4 c; void main() { for (int i = 0; i < 4; i++) { break; "
        "} c = vec4(0.0); }",
        {}, diags);
    EXPECT_EQ(r, nullptr);
    EXPECT_TRUE(diags.hasErrors());
}

// ----------------------------------------------------------------- sema

TEST(Sema, TypesAnnotated)
{
    auto cs = feOk(R"(
        in vec2 uv;
        uniform sampler2D tex;
        out vec4 c;
        void main() {
            vec4 t = texture(tex, uv);
            float l = dot(t.rgb, vec3(0.299, 0.587, 0.114));
            c = vec4(l);
        }
    )");
    const auto &body = cs.ast.functions[0].body->body;
    EXPECT_EQ(body[0]->rhs->type.str(), "vec4");
    EXPECT_EQ(body[1]->rhs->type.str(), "float");
}

TEST(Sema, IntToFloatCoercion)
{
    auto cs = feOk("out vec4 c; void main() { float x = 3; c = vec4(x * "
                   "2); }");
    const Stmt &decl = *cs.ast.functions[0].body->body[0];
    EXPECT_EQ(decl.rhs->kind, ExprKind::FloatLit);
    EXPECT_DOUBLE_EQ(decl.rhs->floatValue, 3.0);
}

TEST(Sema, ScalarVectorArithmetic)
{
    auto cs = feOk(R"(
        out vec4 c;
        void main() {
            vec3 v = vec3(1.0, 2.0, 3.0);
            vec3 w = v * 2.0;
            vec3 u = 0.5 * w + v;
            c = vec4(u, 1.0);
        }
    )");
    const auto &body = cs.ast.functions[0].body->body;
    EXPECT_EQ(body[1]->rhs->type.str(), "vec3");
    EXPECT_EQ(body[2]->rhs->type.str(), "vec3");
}

TEST(Sema, MatrixTyping)
{
    auto cs = feOk(R"(
        uniform mat4 mvp;
        in vec2 uv;
        out vec4 c;
        void main() {
            vec4 p = mvp * vec4(uv, 0.0, 1.0);
            mat4 m2 = mvp * mvp;
            c = m2 * p;
        }
    )");
    const auto &body = cs.ast.functions[0].body->body;
    EXPECT_EQ(body[0]->rhs->type.str(), "vec4");
    EXPECT_EQ(body[1]->rhs->type.str(), "mat4");
}

TEST(Sema, RejectsUndefinedVariable)
{
    DiagEngine diags;
    auto r = tryCompileShader(
        "out vec4 c; void main() { c = vec4(nope); }", {}, diags);
    EXPECT_EQ(r, nullptr);
}

TEST(Sema, RejectsAssignToUniform)
{
    DiagEngine diags;
    auto r = tryCompileShader(
        "uniform float u; out vec4 c; void main() { u = 1.0; c = "
        "vec4(u); }",
        {}, diags);
    EXPECT_EQ(r, nullptr);
}

TEST(Sema, RejectsAssignToConst)
{
    DiagEngine diags;
    auto r = tryCompileShader(
        "out vec4 c; void main() { const float k = 1.0; k = 2.0; c = "
        "vec4(k); }",
        {}, diags);
    EXPECT_EQ(r, nullptr);
}

TEST(Sema, RejectsBadSwizzle)
{
    DiagEngine diags;
    auto r = tryCompileShader(
        "in vec2 uv; out vec4 c; void main() { c = vec4(uv.z); }", {},
        diags);
    EXPECT_EQ(r, nullptr);
}

TEST(Sema, RejectsTypeMismatch)
{
    DiagEngine diags;
    auto r = tryCompileShader(
        "out vec4 c; void main() { vec3 v = vec2(1.0); c = vec4(v, "
        "1.0); }",
        {}, diags);
    EXPECT_EQ(r, nullptr);
}

TEST(Sema, RequiresMain)
{
    DiagEngine diags;
    auto r = tryCompileShader("out vec4 c;", {}, diags);
    EXPECT_EQ(r, nullptr);
}

TEST(Sema, ShadowedLocalsAreRenamed)
{
    auto cs = feOk(R"(
        out vec4 c;
        void main() {
            float x = 1.0;
            if (x > 0.5) {
                float x = 2.0;
                c = vec4(x);
            } else {
                c = vec4(x);
            }
        }
    )");
    const auto &ifstmt = *cs.ast.functions[0].body->body[1];
    const auto &then_block = *ifstmt.body[0];
    const Stmt &inner = *then_block.body[0];
    ASSERT_EQ(inner.kind, StmtKind::Decl);
    EXPECT_NE(inner.name, "x"); // alpha-renamed
}

TEST(Sema, GlFragCoordAvailable)
{
    auto cs = feOk("out vec4 c; void main() { c = gl_FragCoord; }");
    EXPECT_EQ(cs.ast.functions[0].body->body[0]->rhs->type.str(),
              "vec4");
}

TEST(Sema, InterfaceCollected)
{
    auto cs = feOk(R"(
        in vec2 uv;
        in vec3 normal;
        uniform sampler2D tex;
        uniform vec4 tint;
        out vec4 color;
        void main() { color = texture(tex, uv) * tint *
                              vec4(normal, 1.0); }
    )");
    EXPECT_EQ(cs.interface.inputs.size(), 2u);
    EXPECT_EQ(cs.interface.uniforms.size(), 2u);
    ASSERT_EQ(cs.interface.outputs.size(), 1u);
    EXPECT_EQ(cs.interface.outputs[0].name, "color");
}

// -------------------------------------------------------------- printer

TEST(Printer, RoundTripIsStable)
{
    const char *src = R"(
        in vec2 uv;
        uniform sampler2D tex;
        uniform vec4 ambient;
        out vec4 fragColor;
        void main() {
            float weightTotal = 0.0;
            fragColor = vec4(0.0);
            for (int i = 0; i < 9; i++) {
                fragColor += texture(tex, uv) * 3.0 * ambient;
                weightTotal += 0.1;
            }
            fragColor /= weightTotal;
        }
    )";
    auto cs1 = feOk(src);
    std::string printed1 = printShader(cs1.ast);
    auto cs2 = feOk(printed1);
    std::string printed2 = printShader(cs2.ast);
    EXPECT_EQ(printed1, printed2);
}

TEST(Printer, EmitsValidFloats)
{
    auto cs = feOk("out vec4 c; void main() { c = vec4(0.5, 1.0, "
                   "0.699301, 3.0); }");
    std::string printed = printShader(cs.ast);
    EXPECT_NE(printed.find("0.699301"), std::string::npos);
    EXPECT_NE(printed.find("vec4(0.5, 1.0"), std::string::npos);
}

TEST(Printer, IfElsePrinted)
{
    auto cs = feOk(R"(
        in vec2 uv; out vec4 c;
        void main() {
            if (uv.x > 0.5) { c = vec4(1.0); } else { c = vec4(0.0); }
        }
    )");
    std::string printed = printShader(cs.ast);
    EXPECT_NE(printed.find("if (uv.x > 0.5) {"), std::string::npos);
    EXPECT_NE(printed.find("} else {"), std::string::npos);
}

// ------------------------------------------------ übershader behaviour

TEST(Ubershader, DefinesSelectVariants)
{
    const char *uber = R"(
        in vec2 uv;
        uniform sampler2D tex;
        out vec4 c;
        void main() {
            vec4 base = texture(tex, uv);
        #ifdef GRAYSCALE
            float l = dot(base.rgb, vec3(0.299, 0.587, 0.114));
            base = vec4(l, l, l, base.a);
        #endif
        #ifdef INVERT
            base = vec4(1.0) - base;
        #endif
            c = base;
        }
    )";
    auto plain = feOk(uber);
    auto gray = feOk(uber, {{"GRAYSCALE", ""}});
    auto both = feOk(uber, {{"GRAYSCALE", ""}, {"INVERT", ""}});
    EXPECT_LT(printShader(plain.ast).size(),
              printShader(gray.ast).size());
    EXPECT_LT(printShader(gray.ast).size(),
              printShader(both.ast).size());
}

} // namespace
} // namespace gsopt::glsl
