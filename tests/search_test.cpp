/**
 * @file
 * Search-strategy tests: the exhaustive strategy reproduces the
 * campaign's per-shader optimum exactly, the cheaper strategies
 * respect their budgets and never beat the optimum, and every
 * strategy is deterministic.
 */
#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "tuner/experiment.h"
#include "tuner/search.h"

namespace gsopt::tuner {
namespace {

std::vector<corpus::CorpusShader>
miniCorpus()
{
    std::vector<corpus::CorpusShader> out;
    for (const char *name : {"blur/weighted9", "toon/bands3"})
        out.push_back(*corpus::findShader(name));
    return out;
}

TEST(Search, ExhaustiveReproducesEngineOptimum)
{
    const auto shaders = miniCorpus();
    ExperimentEngine engine(shaders, 1);
    for (const auto &shader : shaders) {
        const ShaderResult &r = engine.result(shader.name);
        for (gpu::DeviceId id : gpu::allDevices()) {
            MeasurementOracle oracle(r.exploration,
                                     gpu::deviceModel(id));
            SearchOutcome out = ExhaustiveSearch{}.run(oracle);
            // Same deterministic measurement protocol and labels:
            // exact equality, not tolerance.
            EXPECT_DOUBLE_EQ(out.bestSpeedupPercent,
                             r.bestSpeedup(id))
                << shader.name;
            EXPECT_EQ(out.bestFlags, r.bestFlags(id)) << shader.name;
            // One measurement per unique variant, never more.
            EXPECT_EQ(out.measurementsUsed,
                      r.exploration.uniqueCount())
                << shader.name;
        }
    }
}

TEST(Search, GreedyRespectsQuadraticBudgetAndOptimumBound)
{
    for (const auto &shader : miniCorpus()) {
        Exploration ex = exploreShader(shader);
        const size_t n = ex.exploredFlagCount;
        for (gpu::DeviceId id :
             {gpu::DeviceId::Arm, gpu::DeviceId::Amd}) {
            MeasurementOracle exhaustive_oracle(
                ex, gpu::deviceModel(id));
            SearchOutcome best =
                ExhaustiveSearch{}.run(exhaustive_oracle);

            MeasurementOracle oracle(ex, gpu::deviceModel(id));
            SearchOutcome out = GreedyFlagSearch{}.run(oracle);
            EXPECT_LE(out.bestSpeedupPercent,
                      best.bestSpeedupPercent + 1e-9);
            // Distinct measurements are capped both by the O(N^2)
            // probe count and by the number of unique variants.
            EXPECT_LE(out.measurementsUsed,
                      std::min((n + 1) * (n + 1),
                               ex.uniqueCount()));
            // The incumbent never regresses along the budget curve.
            for (size_t i = 1; i < out.bestByBudget.size(); ++i)
                EXPECT_GE(out.bestByBudget[i],
                          out.bestByBudget[i - 1]);
        }
    }
}

TEST(Search, GreedyClimbsWhereSingleFlagsHelpAndTrapsWhereTheyDont)
{
    // The motivating blur shader's optimum is {Unroll,FP Reassociate}
    // jointly. Where a single flag already pays (AMD: "unrolling
    // always improves performance", paper VI-D5), greedy climbs to a
    // large win; where no single flag improves on its own (Intel's
    // JIT unrolls by itself, Qualcomm's i-cache punishes lone
    // unrolling), hill climbing stops at the start — the concrete
    // budget/quality trade-off the strategy layer exists to expose.
    Exploration ex =
        exploreShader(*corpus::findShader("blur/weighted9"));
    int trapped = 0;
    for (gpu::DeviceId id : gpu::allDevices()) {
        MeasurementOracle a(ex, gpu::deviceModel(id));
        MeasurementOracle b(ex, gpu::deviceModel(id));
        SearchOutcome best = ExhaustiveSearch{}.run(a);
        SearchOutcome greedy = GreedyFlagSearch{}.run(b);
        EXPECT_LE(greedy.bestSpeedupPercent,
                  best.bestSpeedupPercent + 1e-9)
            << gpu::deviceVendor(id);
        EXPECT_LE(greedy.measurementsUsed, best.measurementsUsed)
            << gpu::deviceVendor(id);
        trapped +=
            greedy.bestSpeedupPercent <
            best.bestSpeedupPercent - 5.0;
    }
    // Strongly positive climb where unroll alone already helps.
    MeasurementOracle amd(ex, gpu::deviceModel(gpu::DeviceId::Amd));
    EXPECT_GT(GreedyFlagSearch{}.run(amd).bestSpeedupPercent, 20.0);
    // And at least one platform demonstrates the local-optimum trap.
    EXPECT_GE(trapped, 1);
}

TEST(Search, RandomIsDeterministicAndBudgeted)
{
    Exploration ex = exploreShader(*corpus::findShader("toon/bands3"));
    const gpu::DeviceModel &device =
        gpu::deviceModel(gpu::DeviceId::Intel);

    MeasurementOracle o1(ex, device), o2(ex, device);
    SearchOutcome a = RandomSearch(6, 42).run(o1);
    SearchOutcome b = RandomSearch(6, 42).run(o2);
    EXPECT_EQ(a.bestFlags, b.bestFlags);
    EXPECT_DOUBLE_EQ(a.bestSpeedupPercent, b.bestSpeedupPercent);
    EXPECT_EQ(a.measurementsUsed, b.measurementsUsed);
    EXPECT_LE(a.measurementsUsed, 6u);
    EXPECT_GE(a.measurementsUsed, 1u);

    MeasurementOracle o3(ex, device);
    SearchOutcome big = RandomSearch(1000, 42).run(o3);
    // Budget beyond the variant space: capped by unique variants.
    EXPECT_LE(big.measurementsUsed, ex.uniqueCount());
}

TEST(Search, OracleCachesRepeatedVariants)
{
    Exploration ex =
        exploreShader(*corpus::findShader("simple/grayscale"));
    MeasurementOracle oracle(ex,
                             gpu::deviceModel(gpu::DeviceId::Nvidia));
    const double first = oracle.measure(FlagSet::none());
    const size_t after_first = oracle.measurementsTaken();
    // ADCE alone never changes the output text (paper VI-D1): same
    // variant, so the repeat probe must be free and identical.
    const double again =
        oracle.measure(FlagSet::none().with(kAdce));
    EXPECT_DOUBLE_EQ(first, again);
    EXPECT_EQ(oracle.measurementsTaken(), after_first);
}

TEST(Search, DefaultRosterCoversTheThreeFamilies)
{
    auto roster = defaultStrategies(12, 7);
    ASSERT_EQ(roster.size(), 3u);
    EXPECT_EQ(roster[0]->name(), "exhaustive");
    EXPECT_EQ(roster[1]->name(), "greedy");
    EXPECT_EQ(roster[2]->name(), "random(12)");
}

} // namespace
} // namespace gsopt::tuner
