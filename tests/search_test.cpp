/**
 * @file
 * Search-strategy tests: the exhaustive strategy reproduces the
 * campaign's per-shader optimum exactly, the cheaper strategies
 * respect their budgets and never beat the optimum, and every
 * strategy is deterministic.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "corpus/corpus.h"
#include "passes/registry.h"
#include "support/rng.h"
#include "tuner/experiment.h"
#include "tuner/search.h"

namespace gsopt::tuner {
namespace {

std::vector<corpus::CorpusShader>
miniCorpus()
{
    std::vector<corpus::CorpusShader> out;
    for (const char *name : {"blur/weighted9", "toon/bands3"})
        out.push_back(*corpus::findShader(name));
    return out;
}

TEST(Search, ExhaustiveReproducesEngineOptimum)
{
    const auto shaders = miniCorpus();
    ExperimentEngine engine(shaders, 1);
    for (const auto &shader : shaders) {
        const ShaderResult &r = engine.result(shader.name);
        for (gpu::DeviceId id : gpu::allDevices()) {
            MeasurementOracle oracle(r.exploration,
                                     gpu::deviceModel(id));
            SearchOutcome out = ExhaustiveSearch{}.run(oracle);
            // Same deterministic measurement protocol and labels:
            // exact equality, not tolerance.
            EXPECT_DOUBLE_EQ(out.bestSpeedupPercent,
                             r.bestSpeedup(id))
                << shader.name;
            EXPECT_EQ(out.bestFlags, r.bestFlags(id)) << shader.name;
            // One measurement per unique variant, never more.
            EXPECT_EQ(out.measurementsUsed,
                      r.exploration.uniqueCount())
                << shader.name;
        }
    }
}

TEST(Search, GreedyRespectsQuadraticBudgetAndOptimumBound)
{
    for (const auto &shader : miniCorpus()) {
        Exploration ex = exploreShader(shader);
        const size_t n = ex.exploredFlagCount;
        for (gpu::DeviceId id :
             {gpu::DeviceId::Arm, gpu::DeviceId::Amd}) {
            MeasurementOracle exhaustive_oracle(
                ex, gpu::deviceModel(id));
            SearchOutcome best =
                ExhaustiveSearch{}.run(exhaustive_oracle);

            MeasurementOracle oracle(ex, gpu::deviceModel(id));
            SearchOutcome out = GreedyFlagSearch{}.run(oracle);
            EXPECT_LE(out.bestSpeedupPercent,
                      best.bestSpeedupPercent + 1e-9);
            // Distinct measurements are capped both by the O(N^2)
            // probe count and by the number of unique variants.
            EXPECT_LE(out.measurementsUsed,
                      std::min((n + 1) * (n + 1),
                               ex.uniqueCount()));
            // The incumbent never regresses along the budget curve.
            for (size_t i = 1; i < out.bestByBudget.size(); ++i)
                EXPECT_GE(out.bestByBudget[i],
                          out.bestByBudget[i - 1]);
        }
    }
}

TEST(Search, GreedyClimbsWhereSingleFlagsHelpAndTrapsWhereTheyDont)
{
    // The motivating blur shader's optimum is {Unroll,FP Reassociate}
    // jointly. Where a single flag already pays (AMD: "unrolling
    // always improves performance", paper VI-D5), greedy climbs to a
    // large win; where no single flag improves on its own (Intel's
    // JIT unrolls by itself, Qualcomm's i-cache punishes lone
    // unrolling), hill climbing stops at the start — the concrete
    // budget/quality trade-off the strategy layer exists to expose.
    Exploration ex =
        exploreShader(*corpus::findShader("blur/weighted9"));
    int trapped = 0;
    for (gpu::DeviceId id : gpu::allDevices()) {
        MeasurementOracle a(ex, gpu::deviceModel(id));
        MeasurementOracle b(ex, gpu::deviceModel(id));
        SearchOutcome best = ExhaustiveSearch{}.run(a);
        SearchOutcome greedy = GreedyFlagSearch{}.run(b);
        EXPECT_LE(greedy.bestSpeedupPercent,
                  best.bestSpeedupPercent + 1e-9)
            << gpu::deviceVendor(id);
        EXPECT_LE(greedy.measurementsUsed, best.measurementsUsed)
            << gpu::deviceVendor(id);
        trapped +=
            greedy.bestSpeedupPercent <
            best.bestSpeedupPercent - 5.0;
    }
    // Strongly positive climb where unroll alone already helps.
    MeasurementOracle amd(ex, gpu::deviceModel(gpu::DeviceId::Amd));
    EXPECT_GT(GreedyFlagSearch{}.run(amd).bestSpeedupPercent, 20.0);
    // And at least one platform demonstrates the local-optimum trap.
    EXPECT_GE(trapped, 1);
}

TEST(Search, RandomIsDeterministicAndBudgeted)
{
    Exploration ex = exploreShader(*corpus::findShader("toon/bands3"));
    const gpu::DeviceModel &device =
        gpu::deviceModel(gpu::DeviceId::Intel);

    MeasurementOracle o1(ex, device), o2(ex, device);
    SearchOutcome a = RandomSearch(6, 42).run(o1);
    SearchOutcome b = RandomSearch(6, 42).run(o2);
    EXPECT_EQ(a.bestFlags, b.bestFlags);
    EXPECT_DOUBLE_EQ(a.bestSpeedupPercent, b.bestSpeedupPercent);
    EXPECT_EQ(a.measurementsUsed, b.measurementsUsed);
    EXPECT_LE(a.measurementsUsed, 6u);
    EXPECT_GE(a.measurementsUsed, 1u);

    MeasurementOracle o3(ex, device);
    SearchOutcome big = RandomSearch(1000, 42).run(o3);
    // Budget beyond the variant space: capped by unique variants.
    EXPECT_LE(big.measurementsUsed, ex.uniqueCount());
}

TEST(Search, OracleCachesRepeatedVariants)
{
    Exploration ex =
        exploreShader(*corpus::findShader("simple/grayscale"));
    MeasurementOracle oracle(ex,
                             gpu::deviceModel(gpu::DeviceId::Nvidia));
    const double first = oracle.measure(FlagSet::none());
    const size_t after_first = oracle.measurementsTaken();
    // ADCE alone never changes the output text (paper VI-D1): same
    // variant, so the repeat probe must be free and identical.
    const double again =
        oracle.measure(FlagSet::none().with(kAdce));
    EXPECT_DOUBLE_EQ(first, again);
    EXPECT_EQ(oracle.measurementsTaken(), after_first);
}

TEST(Search, DefaultRosterCoversTheStrategyFamilies)
{
    auto roster = defaultStrategies(12, 7);
    ASSERT_EQ(roster.size(), 4u);
    EXPECT_EQ(roster[0]->name(), "exhaustive");
    EXPECT_EQ(roster[1]->name(), "greedy");
    EXPECT_EQ(roster[2]->name(), "random(12)");
    EXPECT_EQ(roster[3]->name(), "predicted");

    // Transfer joins the roster when a family prior is supplied.
    auto with_prior =
        defaultStrategies(12, 7, std::make_shared<FamilyPrior>());
    ASSERT_EQ(with_prior.size(), 5u);
    EXPECT_EQ(with_prior[4]->name(), "transfer");
}

TEST(Search, FreeProbeImprovementVisibleInBudgetCurve)
{
    // Pre-warm every variant except the passthrough: the strategy's
    // only *paid* measurement is its opening probe of the empty set;
    // everything after resolves from the variant cache for free. The
    // improvements those free probes find must still land in the
    // budget curve (update of the current entry), not stay invisible
    // until a next paid measurement that never comes.
    Exploration ex =
        exploreShader(*corpus::findShader("blur/weighted9"));
    MeasurementOracle oracle(ex, gpu::deviceModel(gpu::DeviceId::Amd));
    for (size_t v = 0; v < ex.variants.size(); ++v) {
        if (static_cast<int>(v) != ex.passthroughVariant)
            oracle.measure(ex.variants[v].producers.front());
    }
    const size_t prewarmed = oracle.measurementsTaken();

    SearchOutcome out = GreedyFlagSearch{}.run(oracle);
    // Accounting is the oracle *delta*, never the pre-warmed total.
    EXPECT_EQ(out.measurementsUsed, 1u);
    EXPECT_EQ(oracle.measurementsTaken(), prewarmed + 1);
    // On AMD, greedy climbs well past the passthrough's ~0%; the
    // climb happened entirely on free probes after the single paid
    // one, so the one-entry curve must carry the final incumbent.
    EXPECT_GT(out.bestSpeedupPercent, 20.0);
    ASSERT_EQ(out.bestByBudget.size(), 1u);
    EXPECT_DOUBLE_EQ(out.bestByBudget.back(), out.bestSpeedupPercent);
}

TEST(Search, PredictedReachesOptimumWhereGreedyTraps)
{
    // blur/weighted9's optimum is {Unroll, FP Reassociate} *jointly*:
    // on Intel (JIT unrolls by itself) and Qualcomm (i-cache punishes
    // lone unrolling) no single flag improves, so greedy stops at the
    // start. The predicted strategy starts from the cost model's
    // flag set and must do at least as well everywhere — and reach
    // within 1 pp of the exhaustive optimum on at most 8
    // measurements on every device.
    Exploration ex =
        exploreShader(*corpus::findShader("blur/weighted9"));
    for (gpu::DeviceId id : gpu::allDevices()) {
        MeasurementOracle a(ex, gpu::deviceModel(id));
        MeasurementOracle b(ex, gpu::deviceModel(id));
        MeasurementOracle c(ex, gpu::deviceModel(id));
        const SearchOutcome best = ExhaustiveSearch{}.run(a);
        const SearchOutcome greedy = GreedyFlagSearch{}.run(b);
        const SearchOutcome predicted = PredictedSearch{}.run(c);

        EXPECT_GE(predicted.bestSpeedupPercent,
                  greedy.bestSpeedupPercent - 1e-9)
            << gpu::deviceVendor(id);
        EXPECT_GE(predicted.bestSpeedupPercent,
                  best.bestSpeedupPercent - 1.0)
            << gpu::deviceVendor(id);
        EXPECT_LE(predicted.measurementsUsed, 8u)
            << gpu::deviceVendor(id);
    }
    // The trap platforms are where the model genuinely pays: greedy
    // is stuck at the passthrough, predicted is not.
    for (gpu::DeviceId id :
         {gpu::DeviceId::Intel, gpu::DeviceId::Qualcomm}) {
        MeasurementOracle b(ex, gpu::deviceModel(id));
        MeasurementOracle c(ex, gpu::deviceModel(id));
        const SearchOutcome greedy = GreedyFlagSearch{}.run(b);
        const SearchOutcome predicted = PredictedSearch{}.run(c);
        EXPECT_GT(predicted.bestSpeedupPercent,
                  greedy.bestSpeedupPercent + 5.0)
            << gpu::deviceVendor(id);
    }
}

TEST(Search, TransferSeedsFromFamilySiblings)
{
    // Build a campaign over three blur-family siblings, then search a
    // member with the transfer strategy: its seed majority-votes the
    // *other* members' campaign-best flags (leave-one-out), which
    // lands near the optimum in a handful of measurements.
    std::vector<corpus::CorpusShader> shaders;
    for (const char *name :
         {"blur/weighted9", "blur/gauss5", "blur/gauss9"})
        shaders.push_back(*corpus::findShader(name));
    ExperimentEngine engine(shaders, 1);
    auto prior =
        std::make_shared<const FamilyPrior>(engine.familyPrior());
    EXPECT_EQ(prior->familyCount(), 1u);

    const ShaderResult &r = engine.result("blur/weighted9");
    for (gpu::DeviceId id : gpu::allDevices()) {
        MeasurementOracle a(r.exploration, gpu::deviceModel(id));
        MeasurementOracle b(r.exploration, gpu::deviceModel(id));
        const SearchOutcome best = ExhaustiveSearch{}.run(a);
        const SearchOutcome transfer =
            TransferSeededSearch{prior}.run(b);
        EXPECT_GE(transfer.bestSpeedupPercent,
                  best.bestSpeedupPercent - 1.0)
            << gpu::deviceVendor(id);
        EXPECT_LE(transfer.measurementsUsed, 8u)
            << gpu::deviceVendor(id);
    }

    // Unknown families fall back to the empty seed, and the
    // leave-one-out exclusion really removes the queried shader: a
    // single-member family has nothing left to vote with.
    EXPECT_EQ(prior->seedFor("nosuchfamily", gpu::DeviceId::Amd),
              FlagSet::none());
    ExperimentEngine solo(
        {*corpus::findShader("toon/bands3")}, 1);
    const FamilyPrior solo_prior = solo.familyPrior();
    EXPECT_NE(solo_prior.seedFor("toon", gpu::DeviceId::Amd),
              FlagSet::none());
    EXPECT_EQ(solo_prior.seedFor("toon", gpu::DeviceId::Amd,
                                 "toon/bands3"),
              FlagSet::none());
}

TEST(Search, StrategiesStayInBoundsBeyondEightPasses)
{
    // The N>8 regression: with the full catalog registered (N=11,
    // 2048 combinations), every budgeted strategy must stay within
    // its measurement budget, never produce a flag set indexing past
    // the FlagSet width, and never beat the exhaustive optimum.
    passes::ScopedExtraPasses extras;
    const size_t n = flagCount();
    ASSERT_EQ(n, 11u);

    Exploration ex =
        exploreShader(*corpus::findShader("blur/weighted9"));
    ASSERT_EQ(ex.exploredFlagCount, 11u);
    ASSERT_EQ(ex.variantOfCombo.size(), 2048u);

    // A family prior whose votes include catalog bits: seedFor must
    // size its ballot from the live registry, not the historical 8.
    auto prior = std::make_shared<FamilyPrior>();
    for (const char *sib : {"blur/gauss5", "blur/gauss9"}) {
        prior->add("blur", gpu::DeviceId::Arm, sib,
                   FlagSet::none().with(4).with(10));
        prior->add("blur", gpu::DeviceId::Qualcomm, sib,
                   FlagSet::none().with(4).with(10));
    }
    const FlagSet seed = prior->seedFor("blur", gpu::DeviceId::Arm);
    EXPECT_TRUE(seed.has(10));

    const uint64_t width_mask = (1ull << n) - 1;
    for (gpu::DeviceId id : gpu::allDevices()) {
        MeasurementOracle exhaustive_oracle(ex, gpu::deviceModel(id));
        const SearchOutcome best =
            ExhaustiveSearch{}.run(exhaustive_oracle);
        EXPECT_EQ(best.measurementsUsed, ex.uniqueCount());

        MeasurementOracle g(ex, gpu::deviceModel(id));
        MeasurementOracle p(ex, gpu::deviceModel(id));
        MeasurementOracle t(ex, gpu::deviceModel(id));
        const SearchOutcome greedy = GreedyFlagSearch{}.run(g);
        const SearchOutcome predicted = PredictedSearch{}.run(p);
        const SearchOutcome transfer =
            TransferSeededSearch{prior}.run(t);

        for (const SearchOutcome *out :
             {&greedy, &predicted, &transfer}) {
            // Never index past the FlagSet width.
            EXPECT_EQ(out->bestFlags.bits & ~width_mask, 0u)
                << gpu::deviceVendor(id);
            // Never beat the optimum.
            EXPECT_LE(out->bestSpeedupPercent,
                      best.bestSpeedupPercent + 1e-9)
                << gpu::deviceVendor(id);
        }
        // Budgets: greedy's O(N^2) probe cap, the refine caps for the
        // model-guided strategies.
        EXPECT_LE(greedy.measurementsUsed,
                  std::min((n + 1) * (n + 1), ex.uniqueCount()));
        EXPECT_LE(predicted.measurementsUsed, 8u)
            << gpu::deviceVendor(id);
        EXPECT_LE(transfer.measurementsUsed, 8u)
            << gpu::deviceVendor(id);
    }

    // Random draws cover the widened combo space, stay budgeted, and
    // remain deterministic at N=11.
    MeasurementOracle r1(ex, gpu::deviceModel(gpu::DeviceId::Intel));
    MeasurementOracle r2(ex, gpu::deviceModel(gpu::DeviceId::Intel));
    const SearchOutcome a = RandomSearch(6, 42).run(r1);
    const SearchOutcome b = RandomSearch(6, 42).run(r2);
    EXPECT_EQ(a.bestFlags, b.bestFlags);
    EXPECT_EQ(a.bestFlags.bits & ~width_mask, 0u);
    EXPECT_LE(a.measurementsUsed, 6u);
}

TEST(Search, RandomDrawSequenceIsPlatformStable)
{
    // RandomSearch draws exclusively from support/rng (xoshiro256**
    // via Rng::below), never std distributions, so the sequence is
    // identical on every platform and standard library. These are
    // the draws RandomSearch(seed=42) makes for toon/bands3's
    // 256-combination space; a platform or library that changed them
    // would silently re-shuffle every published budget curve.
    Rng rng(hashCombine(42, fnv1a("toon/bands3")));
    const uint64_t expected[6] = {161, 56, 133, 91, 26, 123};
    for (uint64_t e : expected)
        EXPECT_EQ(rng.below(256), e);
}

TEST(Search, RandomDuplicateDrawsDoNotDistortAccounting)
{
    Exploration ex = exploreShader(*corpus::findShader("toon/bands3"));
    const gpu::DeviceModel &device =
        gpu::deviceModel(gpu::DeviceId::Intel);

    for (uint64_t seed : {1ull, 7ull, 42ull, 0x5eedull}) {
        MeasurementOracle o1(ex, device), o2(ex, device);
        const SearchOutcome a = RandomSearch(6, seed).run(o1);
        const SearchOutcome b = RandomSearch(6, seed).run(o2);
        EXPECT_EQ(a.bestFlags, b.bestFlags) << seed;
        EXPECT_DOUBLE_EQ(a.bestSpeedupPercent, b.bestSpeedupPercent)
            << seed;
        EXPECT_EQ(a.measurementsUsed, b.measurementsUsed) << seed;
        // Duplicate draws map to already-measured variants and are
        // free: the paid count can never exceed the budget or the
        // number of unique variants, and exactly matches the curve.
        EXPECT_LE(a.measurementsUsed,
                  std::min<size_t>(6, ex.uniqueCount()))
            << seed;
        EXPECT_EQ(a.measurementsUsed, a.bestByBudget.size()) << seed;
        EXPECT_EQ(a.measurementsUsed, o1.measurementsTaken()) << seed;
    }

    // A pre-warmed oracle must not inflate the count: the strategy
    // reports its own spend (the oracle delta), and terminates even
    // though the budget can never be reached.
    MeasurementOracle warmed(ex, device);
    for (size_t v = 0; v < ex.variants.size(); ++v)
        warmed.measure(ex.variants[v].producers.front());
    const SearchOutcome c = RandomSearch(6, 42).run(warmed);
    EXPECT_EQ(c.measurementsUsed, 0u);
    EXPECT_EQ(warmed.measurementsTaken(), ex.uniqueCount());
}

TEST(Search, SequenceRespectsBudgetAndFindsOrderingWins)
{
    // N=8 contract: SequenceSearch is budget-capped, deterministic,
    // and degrades gracefully to canonical-only plans without a
    // planner. With a planner it walks real orderings; plansWalked
    // grows while the budget cap still holds.
    const corpus::CorpusShader &shader =
        *corpus::findShader("blur/weighted9");
    const gpu::DeviceModel &device =
        gpu::deviceModel(gpu::DeviceId::Amd);

    for (size_t budget : {size_t{4}, size_t{12}}) {
        Exploration e1 = exploreShader(shader);
        Exploration e2 = exploreShader(shader);
        PlanExplorer p1(shader, e1), p2(shader, e2);
        MeasurementOracle o1(e1, device, &p1);
        MeasurementOracle o2(e2, device, &p2);
        ASSERT_TRUE(o1.canExplorePlans());

        const SearchOutcome a = SequenceSearch(budget).run(o1);
        const SearchOutcome b = SequenceSearch(budget).run(o2);
        EXPECT_LE(a.measurementsUsed, budget) << budget;
        EXPECT_GE(a.measurementsUsed, 1u);
        EXPECT_EQ(a.measurementsUsed, o1.measurementsTaken());
        // Deterministic across independent explorations.
        EXPECT_EQ(a.bestPlan, b.bestPlan) << budget;
        EXPECT_EQ(a.bestFlags, b.bestFlags) << budget;
        EXPECT_DOUBLE_EQ(a.bestSpeedupPercent, b.bestSpeedupPercent);
        // The plan incumbent and flag incumbent stay coherent.
        EXPECT_EQ(a.bestPlan.mask(), a.bestFlags.bits);
        EXPECT_TRUE(a.bestPlan.valid());
        // The passthrough baseline is probed first, so the incumbent
        // never ends below it.
        EXPECT_GE(a.bestSpeedupPercent, 0.0);
    }

    // Without a planner: canonical-only, same caps, still runs.
    Exploration ex = exploreShader(shader);
    MeasurementOracle lattice_only(ex, device);
    ASSERT_FALSE(lattice_only.canExplorePlans());
    const SearchOutcome c = SequenceSearch(6).run(lattice_only);
    EXPECT_LE(c.measurementsUsed, 6u);
    EXPECT_TRUE(c.bestPlan.isCanonical());

    EXPECT_EQ(SequenceSearch(6).name(), "sequence(6)");

    // A planner over a different exploration is a construction error.
    Exploration other = exploreShader(shader);
    PlanExplorer mismatched(shader, other);
    EXPECT_THROW(MeasurementOracle(ex, device, &mismatched),
                 std::logic_error);
}

TEST(Search, SequenceStaysInBoundsBeyondEightPasses)
{
    // N=11: the full catalog opens the ordering dimension (licm
    // before unroll). On the spectral god-rays shader the ordered
    // plan beats the canonical-only sequence search on AMD — the
    // device whose JIT neither unrolls nor hoists.
    passes::ScopedExtraPasses extras;
    const size_t n = flagCount();
    ASSERT_EQ(n, 11u);

    const corpus::CorpusShader &shader =
        *corpus::findShader("godrays/march64_spectral");
    const gpu::DeviceModel &device =
        gpu::deviceModel(gpu::DeviceId::Amd);
    const uint64_t width_mask = (1ull << n) - 1;

    Exploration ordered_ex = exploreShader(shader);
    ASSERT_EQ(ordered_ex.exploredFlagCount, 11u);
    PlanExplorer planner(shader, ordered_ex);
    MeasurementOracle ordered(ordered_ex, device, &planner);
    const SearchOutcome with_plans = SequenceSearch(16).run(ordered);

    Exploration lattice_ex = exploreShader(shader);
    MeasurementOracle lattice(lattice_ex, device);
    const SearchOutcome lattice_only = SequenceSearch(16).run(lattice);

    for (const SearchOutcome *out : {&with_plans, &lattice_only}) {
        EXPECT_LE(out->measurementsUsed, 16u);
        EXPECT_EQ(out->bestFlags.bits & ~width_mask, 0u);
        EXPECT_TRUE(out->bestPlan.valid());
    }
    // The ordering dimension is real measured value, not bookkeeping:
    // the planner-backed search finds a strictly better plan than any
    // canonical probe sequence, and the winning plan is non-canonical.
    EXPECT_GT(with_plans.bestSpeedupPercent,
              lattice_only.bestSpeedupPercent);
    EXPECT_FALSE(with_plans.bestPlan.isCanonical());

    // Plan-exploration accounting: the walked plans appended at most
    // a handful of variants, each annotated or deduped, and the
    // memoized applier kept pass runs bounded.
    EXPECT_GT(planner.plansWalked(), 0u);
    EXPECT_FALSE(ordered_ex.variantOfPlan.empty());
    for (const auto &[text, v] : ordered_ex.variantOfPlan) {
        passes::PassPlan parsed;
        ASSERT_TRUE(passes::PassPlan::parse(text, parsed)) << text;
        EXPECT_GE(v, 0);
        EXPECT_LT(static_cast<size_t>(v), ordered_ex.uniqueCount());
    }
}

} // namespace
} // namespace gsopt::tuner
