/**
 * @file
 * Arena lifetime semantics. The IR refactor moved Instr/Var storage
 * into a per-Module bump arena; these tests pin down the ownership
 * contract that passes and the exploration tree rely on:
 *
 *  - a clone is storage-independent and outlives its source module;
 *  - unlinking instructions never invalidates other references
 *    (addresses are stable until the module dies);
 *  - the slot-indexed interpreter and the verifier behave identically
 *    over arena-backed IR (bit-identical to interpretReference);
 *  - the allocator itself: bump allocation, chunk growth, accounting,
 *    and the InlineVec fixed-capacity surface.
 */
#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "emit/emit.h"
#include "glsl/frontend.h"
#include "ir/arena.h"
#include "ir/interp.h"
#include "ir/verifier.h"
#include "ir/walk.h"
#include "lower/lower.h"
#include "passes/passes.h"
#include "runtime/framework.h"
#include "tuner/flags.h"

namespace gsopt {
namespace {

// ------------------------------------------------------------- arena

TEST(Arena, BumpAllocatesAndAccounts)
{
    ir::Arena arena;
    EXPECT_EQ(arena.bytesUsed(), 0u);
    EXPECT_EQ(arena.chunkCount(), 0u);

    int *a = arena.create<int>(7);
    double *b = arena.create<double>(1.5);
    EXPECT_EQ(*a, 7);
    EXPECT_EQ(*b, 1.5);
    EXPECT_GE(arena.bytesUsed(), sizeof(int) + sizeof(double));
    EXPECT_EQ(arena.chunkCount(), 1u);
    EXPECT_GE(arena.bytesReserved(), arena.bytesUsed());

    // Earlier objects stay valid and stable across chunk growth.
    for (int i = 0; i < 100000; ++i)
        arena.create<uint64_t>(static_cast<uint64_t>(i));
    EXPECT_GT(arena.chunkCount(), 1u);
    EXPECT_EQ(*a, 7);
    EXPECT_EQ(*b, 1.5);
}

TEST(Arena, ReserveHintGetsOneChunk)
{
    ir::Arena arena;
    arena.reserveHint(1 << 20);
    for (int i = 0; i < 1000; ++i)
        arena.create<uint64_t>(0);
    EXPECT_EQ(arena.chunkCount(), 1u);
}

TEST(Arena, MoveTransfersOwnership)
{
    ir::Arena a;
    int *p = a.create<int>(42);
    ir::Arena b = std::move(a);
    EXPECT_EQ(*p, 42);
    EXPECT_EQ(a.bytesUsed(), 0u);
    EXPECT_GT(b.bytesUsed(), 0u);
}

TEST(InlineVec, VectorSurface)
{
    ir::InlineVec<int, 4> v;
    EXPECT_TRUE(v.empty());
    v.push_back(1);
    v.push_back(2);
    EXPECT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v.back(), 2);

    v = {5, 6, 7};
    EXPECT_EQ(v.size(), 3u);
    int sum = 0;
    for (int x : v)
        sum += x;
    EXPECT_EQ(sum, 18);

    std::vector<int> copy = v; // conversion used by foldConstInstr
    EXPECT_EQ(copy, (std::vector<int>{5, 6, 7}));

    ir::InlineVec<int, 4> w(std::vector<int>{5, 6, 7});
    EXPECT_TRUE(v == w);
    w.push_back(8);
    EXPECT_TRUE(v != w);

    v.assign(4u, 9);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v[3], 9);
    v.clear();
    EXPECT_TRUE(v.empty());
}

// ---------------------------------------------------- IR lifetimes

std::unique_ptr<ir::Module>
lowerCorpusShader(const char *name, const passes::OptFlags &flags)
{
    const corpus::CorpusShader &s = *corpus::findShader(name);
    glsl::CompiledShader cs = glsl::compileShader(s.source, s.defines);
    auto m = lower::lowerShader(cs);
    passes::optimize(*m, flags);
    return m;
}

TEST(ArenaLifetime, CloneOutlivesSourceModule)
{
    for (const char *name :
         {"simple/grayscale", "blur/weighted9", "uber/car_chase"}) {
        passes::OptFlags flags = passes::OptFlags::lunarGlassDefaults();
        auto source = lowerCorpusShader(name, flags);
        const uint64_t source_fp = ir::fingerprint(*source);
        const std::string source_text = emit::emitGlsl(*source);

        auto clone = source->clone();
        source.reset(); // free every source chunk

        // The clone must still verify, fingerprint, print, and run —
        // any pointer into the dead source arena would break here (and
        // trip ASan in the sanitizer CI job).
        EXPECT_TRUE(ir::verify(*clone).empty()) << name;
        EXPECT_EQ(ir::fingerprint(*clone), source_fp) << name;
        EXPECT_EQ(emit::emitGlsl(*clone), source_text) << name;

        const corpus::CorpusShader &s = *corpus::findShader(name);
        glsl::CompiledShader cs =
            glsl::compileShader(s.source, s.defines);
        ir::InterpEnv env = runtime::defaultEnvironment(cs.interface);
        auto result = ir::interpret(*clone, env);
        EXPECT_FALSE(result.outputs.empty()) << name;
    }
}

TEST(ArenaLifetime, UnlinkedInstructionsKeepStableAddresses)
{
    auto m = lowerCorpusShader("simple/grayscale",
                               passes::OptFlags::none());
    // Collect the addresses of everything, then DCE-style unlink every
    // pure instruction from the blocks.
    std::vector<const ir::Instr *> all;
    ir::forEachInstr(m->body, [&](const ir::Instr &i) {
        all.push_back(&i);
    });
    ASSERT_FALSE(all.empty());
    ir::eraseInstrsIf(m->body, [](const ir::Instr &i) {
        return !ir::hasSideEffects(i.op);
    });
    // The unlinked instructions are still readable: their storage
    // belongs to the arena, not to the block lists.
    for (const ir::Instr *i : all)
        EXPECT_LT(i->id, m->idBound());
}

TEST(ArenaLifetime, ModuleReportsArenaFootprint)
{
    auto m = lowerCorpusShader("blur/weighted9",
                               passes::OptFlags::none());
    const size_t bytes = m->arenaBytes();
    EXPECT_GT(bytes, m->instructionCount() * sizeof(ir::Instr) / 2);
    auto c = m->clone();
    // The clone pre-reserves the source footprint: same bytes, and it
    // all fits one chunk.
    EXPECT_GE(c->arenaBytes(), bytes / 2);
    EXPECT_EQ(c->arena().chunkCount(), 1u);
}

// ------------------------------------- interp/verifier equivalence

TEST(ArenaInterp, SlotEngineBitIdenticalToReferenceOverArenaIr)
{
    // Focused spot-check (the exhaustive sweep lives in
    // interp_golden_test): optimized arena-backed IR must interpret
    // bit-identically on both engines after the source of a clone is
    // gone.
    for (const char *name : {"tonemap/aces", "pbr/full"}) {
        const corpus::CorpusShader &s = *corpus::findShader(name);
        glsl::CompiledShader cs =
            glsl::compileShader(s.source, s.defines);
        ir::InterpEnv env = runtime::defaultEnvironment(cs.interface);

        auto source = lowerCorpusShader(
            name, passes::OptFlags::lunarGlassDefaults());
        auto m = source->clone();
        source.reset();

        EXPECT_TRUE(ir::verify(*m).empty()) << name;
        auto fast = ir::interpret(*m, env);
        auto ref = ir::interpretReference(*m, env);
        ASSERT_EQ(fast.discarded, ref.discarded) << name;
        ASSERT_EQ(fast.executedInstructions, ref.executedInstructions)
            << name;
        ASSERT_EQ(fast.outputs.size(), ref.outputs.size()) << name;
        for (const auto &[out_name, lanes] : ref.outputs) {
            const auto &g = fast.outputs.at(out_name);
            ASSERT_EQ(g.size(), lanes.size()) << name;
            for (size_t k = 0; k < lanes.size(); ++k)
                EXPECT_EQ(g[k], lanes[k]) << name << " lane " << k;
        }
    }
}

} // namespace
} // namespace gsopt
