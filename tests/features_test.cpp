/**
 * @file
 * Static-feature extraction tests: the library's computeFeatures
 * reproduces the feature values the original flag_predictor example
 * computed (golden values recorded from the pre-refactor example on
 * three corpus shaders), and featuresOf caches one computation per
 * exploration.
 */
#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "glsl/frontend.h"
#include "passes/registry.h"
#include "tuner/explore.h"
#include "tuner/features.h"
#include "tuner/predict.h"

namespace gsopt::tuner {
namespace {

ShaderFeatures
featuresOfShader(const char *name)
{
    const corpus::CorpusShader *s = corpus::findShader(name);
    EXPECT_NE(s, nullptr) << name;
    glsl::CompiledShader cs =
        glsl::compileShader(s->source, s->defines);
    return computeFeatures(cs.preprocessedText);
}

TEST(Features, GoldenValuesMatchTheOriginalExample)
{
    // Recorded from examples/flag_predictor.cpp's featuresOf before
    // the extraction into the library (PR 3): the library model must
    // see exactly what the example's predictor saw.
    const ShaderFeatures blur = featuresOfShader("blur/weighted9");
    EXPECT_TRUE(blur.hasConstLoop);
    EXPECT_EQ(blur.maxTripCount, 9);
    EXPECT_EQ(blur.loopBodyInstrs, 18u);
    EXPECT_EQ(blur.textures, 1);
    EXPECT_EQ(blur.branches, 0);
    EXPECT_FALSE(blur.hasConstDiv);
    EXPECT_EQ(blur.instrs, 27u);

    const ShaderFeatures pbr = featuresOfShader("pbr/full");
    EXPECT_FALSE(pbr.hasConstLoop);
    EXPECT_EQ(pbr.maxTripCount, 0);
    EXPECT_EQ(pbr.loopBodyInstrs, 0u);
    EXPECT_EQ(pbr.textures, 5);
    EXPECT_EQ(pbr.branches, 0);
    EXPECT_TRUE(pbr.hasConstDiv);
    EXPECT_EQ(pbr.instrs, 152u);

    const ShaderFeatures ssao = featuresOfShader("ssao/kernel16");
    EXPECT_TRUE(ssao.hasConstLoop);
    EXPECT_EQ(ssao.maxTripCount, 16);
    EXPECT_EQ(ssao.loopBodyInstrs, 44u);
    EXPECT_EQ(ssao.textures, 3);
    EXPECT_EQ(ssao.branches, 0);
    EXPECT_TRUE(ssao.hasConstDiv);
    EXPECT_EQ(ssao.instrs, 68u);
}

TEST(Features, FeaturesOfCachesOnTheExploration)
{
    Exploration ex =
        exploreShader(*corpus::findShader("blur/weighted9"));
    EXPECT_EQ(ex.featureCache, nullptr);
    const ShaderFeatures &first = featuresOf(ex);
    ASSERT_NE(ex.featureCache, nullptr);
    const ShaderFeatures &again = featuresOf(ex);
    // Same object, not a recomputation.
    EXPECT_EQ(&first, &again);
    EXPECT_EQ(first.maxTripCount, 9);

    // Copies made after the fill share the cached value.
    Exploration copy = ex;
    EXPECT_EQ(&featuresOf(copy), &first);
}

TEST(Features, PredictionIsDeterministicPerDevice)
{
    Exploration ex =
        exploreShader(*corpus::findShader("ssao/kernel16"));
    const ShaderFeatures &f = featuresOf(ex);
    for (gpu::DeviceId id : gpu::allDevices()) {
        const FlagSet a = predictFlags(id, f);
        const FlagSet b = predictFlags(id, f);
        EXPECT_EQ(a, b);
        // The candidate list always leads with the prediction.
        const auto candidates = predictCandidates(id, f);
        ASSERT_GE(candidates.size(), 1u);
        EXPECT_EQ(candidates.front(), a);
    }
    // ARM's vec4 machine never takes the unsafe FP pass; everyone
    // else does (the rules' headline platform split).
    EXPECT_FALSE(
        predictFlags(gpu::DeviceId::Arm, f).has(kFpReassociate));
    EXPECT_TRUE(
        predictFlags(gpu::DeviceId::Amd, f).has(kFpReassociate));
}

TEST(Features, CatalogPassFodderFields)
{
    // The careless-re-fetch composite family carries every construct
    // class the catalog passes rewrite.
    const ShaderFeatures comp = featuresOfShader("composite/hdr_fog");
    EXPECT_EQ(comp.loopInvariantInstrs, 5u); // loop-constant fetch tree
    EXPECT_EQ(comp.powConstChains, 1);       // pow(mapped, vec3(2.0))
    EXPECT_EQ(comp.dupFetches, 5);           // scene/overlay re-fetches
    EXPECT_EQ(comp.intMulPow2, 0);

    const ShaderFeatures blur = featuresOfShader("blur/weighted9");
    EXPECT_EQ(blur.loopInvariantInstrs, 3u);
    EXPECT_EQ(blur.dupFetches, 0);

    const ShaderFeatures dither = featuresOfShader("intmath/dither4x4");
    EXPECT_EQ(dither.intMulPow2, 1);
}

TEST(Predict, CatalogRulesAreRegistrationGatedAndPerDevice)
{
    if (flagCount() != 8)
        GTEST_SKIP() << "needs the catalog passes unregistered; "
                        "GSOPT_EXTRA_PASSES pre-registers them";
    const ShaderFeatures comp = featuresOfShader("composite/hdr_fog");

    // Unregistered catalog passes must never appear in a prediction:
    // the default 8-bit space stays exactly the paper's.
    EXPECT_EQ(predictFlags(gpu::DeviceId::Arm, comp).bits >> 8, 0u);

    passes::ScopedExtraPasses extras;
    const passes::PassRegistry &reg = passes::PassRegistry::instance();
    const int licm = reg.bitOf("licm");
    const int sr = reg.bitOf("strength_reduce");
    const int tb = reg.bitOf("tex_batch");

    // Fetch batching only where no JIT GVN dedups fetches anyway
    // (the tile-based mobile parts).
    EXPECT_TRUE(predictFlags(gpu::DeviceId::Arm, comp).has(tb));
    EXPECT_TRUE(predictFlags(gpu::DeviceId::Qualcomm, comp).has(tb));
    EXPECT_FALSE(predictFlags(gpu::DeviceId::Nvidia, comp).has(tb));
    EXPECT_FALSE(predictFlags(gpu::DeviceId::Intel, comp).has(tb));

    // LICM only where the driver won't unroll the loop away itself.
    EXPECT_TRUE(predictFlags(gpu::DeviceId::Arm, comp).has(licm));
    EXPECT_TRUE(predictFlags(gpu::DeviceId::Amd, comp).has(licm));
    EXPECT_FALSE(predictFlags(gpu::DeviceId::Nvidia, comp).has(licm));

    // pow fodder pays on every transcendental unit.
    for (gpu::DeviceId id : gpu::allDevices())
        EXPECT_TRUE(predictFlags(id, comp).has(sr))
            << gpu::deviceVendor(id);
}

} // namespace
} // namespace gsopt::tuner
