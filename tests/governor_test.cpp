/**
 * @file
 * Resource-governance tests: per-dimension budgets trip with the right
 * structured reason, deadlines fire through the stall-fault watchdog,
 * hostile inputs (macro/nesting bombs) degrade to clean diagnostics,
 * quarantine reasons round-trip through the schema-16 shard format,
 * and a governed campaign with generous budgets is byte-identical to
 * an ungoverned run while a stalled campaign quarantines the affected
 * items and resumes cleanly from the shards that survived.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "corpus/corpus.h"
#include "emit/offline.h"
#include "glsl/frontend.h"
#include "gpu/device.h"
#include "ir/interp.h"
#include "passes/passes.h"
#include "runtime/framework.h"
#include "support/fault.h"
#include "support/governor.h"
#include "support/rng.h"
#include "support/time.h"
#include "test_scratch.h"
#include "tuner/experiment.h"

namespace gsopt {
namespace {

namespace fs = std::filesystem;
using governor::Caps;
using governor::Dim;

/** Masks any ambient GSOPT_FAULTS plan (the CI fault job installs one
 * process-wide); restored on scope exit. */
fault::ScopedFaultPlan
quiesce()
{
    return fault::ScopedFaultPlan(fault::FaultPlan{});
}

/** Caps with a single dimension set. */
Caps
only(Dim d, uint64_t cap)
{
    Caps c;
    c[d] = cap;
    return c;
}

using testutil::ScratchDir;

const char *kTinyShader = "#version 450\n"
                          "out vec4 fragColor;\n"
                          "void main() { fragColor = vec4(0.25); }\n";

/** Saves, clears, and restores every governor env knob, so fromEnv
 * tests see a clean slate even under the governed CI leg's ambient
 * GSOPT_DEADLINE_MS / GSOPT_BUDGET_* environment. */
class ClearGovernorEnv
{
  public:
    ClearGovernorEnv()
    {
        for (const char *name : kKnobs) {
            const char *v = std::getenv(name);
            saved_.emplace_back(name, v ? std::string(v) : std::string(),
                                v != nullptr);
            unsetenv(name);
        }
    }
    ~ClearGovernorEnv()
    {
        for (const auto &[name, value, wasSet] : saved_) {
            if (wasSet)
                setenv(name, value.c_str(), 1);
            else
                unsetenv(name);
        }
    }

  private:
    static constexpr const char *kKnobs[] = {
        "GSOPT_DEADLINE_MS",          "GSOPT_BUDGET_PREPROC_BYTES",
        "GSOPT_BUDGET_TOKENS",        "GSOPT_BUDGET_PARSE_DEPTH",
        "GSOPT_BUDGET_SEMA_DEPTH",    "GSOPT_BUDGET_IR_INSTRS",
        "GSOPT_BUDGET_ARENA_BYTES",   "GSOPT_BUDGET_PASS_STEPS",
        "GSOPT_BUDGET_INTERP_STEPS"};
    std::vector<std::tuple<const char *, std::string, bool>> saved_;
};

// ------------------------------------------------ budget mechanics

TEST(Governor, CapsAnyAndDimNames)
{
    EXPECT_FALSE(Caps{}.any());
    Caps c;
    c.deadlineMs = 5;
    EXPECT_TRUE(c.any());
    EXPECT_TRUE(only(Dim::ArenaBytes, 1).any());
    EXPECT_STREQ(governor::dimName(Dim::PreprocBytes), "preproc-bytes");
    EXPECT_STREQ(governor::dimName(Dim::InterpSteps), "interp-steps");
}

TEST(Governor, FromEnvReadsEveryKnob)
{
    // setenv/getenv without worker threads in flight: safe.
    ClearGovernorEnv clean; // mask any ambient governed-CI knobs
    setenv("GSOPT_DEADLINE_MS", "250", 1);
    setenv("GSOPT_BUDGET_TOKENS", "123", 1);
    setenv("GSOPT_BUDGET_ARENA_BYTES", "4096", 1);
    const Caps c = Caps::fromEnv();
    unsetenv("GSOPT_DEADLINE_MS");
    unsetenv("GSOPT_BUDGET_TOKENS");
    unsetenv("GSOPT_BUDGET_ARENA_BYTES");
    EXPECT_EQ(c.deadlineMs, 250u);
    EXPECT_EQ(c[Dim::Tokens], 123u);
    EXPECT_EQ(c[Dim::ArenaBytes], 4096u);
    EXPECT_EQ(c[Dim::PassSteps], 0u);
}

TEST(Governor, RequestBudgetInstallsFromAmbientCapsOnly)
{
    {
        // All-unlimited ambient caps: admission installs nothing.
        governor::ScopedAmbientCaps ambient{Caps{}};
        governor::ScopedRequestBudget request;
        EXPECT_EQ(request.installed(), nullptr);
        EXPECT_EQ(governor::current(), nullptr);
    }
    {
        governor::ScopedAmbientCaps ambient(only(Dim::Tokens, 10));
        governor::ScopedRequestBudget request;
        ASSERT_NE(request.installed(), nullptr);
        EXPECT_EQ(governor::current(), request.installed());
        EXPECT_EQ(request.installed()->caps()[Dim::Tokens], 10u);
        // A nested request defers to the outer budget's authority.
        governor::ScopedRequestBudget inner;
        EXPECT_EQ(inner.installed(), nullptr);
        EXPECT_EQ(governor::current(), request.installed());
    }
    EXPECT_EQ(governor::current(), nullptr);
}

TEST(Governor, StepMeterFlushesChargesAndSettles)
{
    governor::ScopedBudget scope(only(Dim::InterpSteps, 100));
    governor::StepMeter meter(Dim::InterpSteps, "unit");
    ASSERT_TRUE(meter.active());
    for (int i = 0; i < 100; ++i)
        meter.tick();
    EXPECT_NO_THROW(meter.flush());
    meter.tick(50);
    EXPECT_THROW(meter.flush(), governor::ResourceExhausted);
    // The throwing flush still counted its units.
    EXPECT_EQ(scope.budget().used(Dim::InterpSteps), 150u);
    meter.tick(7);
    meter.settle(); // no-throw accounting past the cap
    EXPECT_EQ(scope.budget().used(Dim::InterpSteps), 157u);
}

// ---------------------------------------- per-dimension trip tests

/** Expect @p fn to throw ResourceExhausted on @p dim at @p stage. */
template <typename Fn>
void
expectExhausted(Dim dim, const char *stage, Fn &&fn)
{
    try {
        fn();
        FAIL() << "expected ResourceExhausted on "
               << governor::dimName(dim);
    } catch (const governor::ResourceExhausted &e) {
        EXPECT_STREQ(e.dimension(), governor::dimName(dim));
        EXPECT_STREQ(e.stage(), stage);
        EXPECT_GT(e.used(), e.limit());
        EXPECT_NE(std::string(e.what()).find("resource exhausted"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find(governor::dimName(dim)),
                  std::string::npos);
    }
}

TEST(GovernorDims, PreprocBytesTripInExpansion)
{
    governor::ScopedBudget scope(only(Dim::PreprocBytes, 16));
    DiagEngine diags;
    const std::string src = "#version 450\n"
                            "#define QUAD(x) x x x x\n"
                            "out vec4 fragColor;\n"
                            "void main() { float q = 0.0 QUAD(+ 1.0)"
                            "; fragColor = vec4(q); }\n";
    expectExhausted(Dim::PreprocBytes, "preprocess", [&] {
        glsl::tryCompileShader(src, {}, diags);
    });
}

TEST(GovernorDims, TokenCapTripsInLexer)
{
    governor::ScopedBudget scope(only(Dim::Tokens, 8));
    DiagEngine diags;
    expectExhausted(Dim::Tokens, "lex", [&] {
        glsl::tryCompileShader(kTinyShader, {}, diags);
    });
}

TEST(GovernorDims, ParseDepthCapTripsOnNestedExpressions)
{
    governor::ScopedBudget scope(only(Dim::ParseDepth, 8));
    DiagEngine diags;
    const std::string src =
        "#version 450\nout vec4 fragColor;\nvoid main() { float x = " +
        std::string(24, '(') + "1.0" + std::string(24, ')') +
        "; fragColor = vec4(x); }\n";
    expectExhausted(Dim::ParseDepth, "parse", [&] {
        glsl::tryCompileShader(src, {}, diags);
    });
}

TEST(GovernorDims, SemaDepthCapTripsOnDeepTrees)
{
    governor::ScopedBudget scope(only(Dim::SemaDepth, 8));
    DiagEngine diags;
    // Parse depth stays unlimited here; the deep tree reaches sema.
    std::string expr = "1.0";
    for (int i = 0; i < 24; ++i)
        expr = "(" + expr + " + 1.0)";
    const std::string src =
        "#version 450\nout vec4 fragColor;\nvoid main() { float x = " +
        expr + "; fragColor = vec4(x); }\n";
    expectExhausted(Dim::SemaDepth, "sema", [&] {
        glsl::tryCompileShader(src, {}, diags);
    });
}

TEST(GovernorDims, IrInstrCapTripsInLowering)
{
    governor::ScopedBudget scope(only(Dim::IrInstrs, 1));
    expectExhausted(Dim::IrInstrs, "ir",
                    [&] { emit::compileToIr(kTinyShader); });
}

TEST(GovernorDims, ArenaByteCapTripsOnAllocation)
{
    governor::ScopedBudget scope(only(Dim::ArenaBytes, 64));
    expectExhausted(Dim::ArenaBytes, "arena",
                    [&] { emit::compileToIr(kTinyShader); });
}

TEST(GovernorDims, PassStepCapTripsMidPipeline)
{
    auto module = emit::compileToIr(kTinyShader);
    governor::ScopedBudget scope(only(Dim::PassSteps, 1));
    expectExhausted(Dim::PassSteps, "passes", [&] {
        passes::optimize(*module, passes::OptFlags::fromMask(0x3));
    });
}

TEST(GovernorDims, InterpStepCapTripsOnExecution)
{
    const std::string src =
        "#version 450\nout vec4 fragColor;\nvoid main() {\n"
        "    float acc = 0.0;\n"
        "    for (int i = 0; i < 200; i++) { acc += 0.5; }\n"
        "    fragColor = vec4(acc);\n"
        "}\n";
    auto module = emit::compileToIr(src);
    governor::ScopedBudget scope(only(Dim::InterpSteps, 64));
    ir::InterpEnv env;
    expectExhausted(Dim::InterpSteps, "interp",
                    [&] { ir::interpret(*module, env); });
}

TEST(GovernorDims, DeadlineTripsInsideARunawayLoop)
{
    // A generic loop whose work bound is astronomically large: only
    // the wall-clock deadline can stop it. The per-trip deadline check
    // in the shared loop guard must fire within milliseconds.
    const std::string src =
        "#version 450\nout vec4 fragColor;\nvoid main() {\n"
        "    float x = 0.0;\n"
        "    while (x < 100000.0) { x = x + 0.001; }\n"
        "    fragColor = vec4(x);\n"
        "}\n";
    auto module = emit::compileToIr(src);
    Caps caps;
    caps.deadlineMs = 20;
    governor::ScopedBudget scope(caps);
    ir::InterpEnv env;
    env.maxLoopIterations = 1'000'000'000L; // the trip cap is not it
    const uint64_t t0 = nowNs();
    try {
        ir::interpret(*module, env);
        FAIL() << "expected deadline exhaustion";
    } catch (const governor::ResourceExhausted &e) {
        EXPECT_STREQ(e.dimension(), "deadline");
        EXPECT_EQ(e.limit(), 20u);
    }
    EXPECT_LT(nowNs() - t0, 5'000'000'000ull) << "must die promptly";
}

// ------------------------------------- hostile inputs, ungoverned

TEST(HostileInputs, RecursiveMacroBombDiagnosesCleanly)
{
    governor::ScopedAmbientCaps ambient{Caps{}};
    DiagEngine diags;
    const std::string src =
        "#version 450\n"
        "#define PING PONG PONG\n"
        "#define PONG PING PING\n"
        "out vec4 fragColor;\n"
        "void main() { float x = PING; fragColor = vec4(x); }\n";
    EXPECT_EQ(glsl::tryCompileShader(src, {}, diags), nullptr);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.str().find("macro expansion"), std::string::npos)
        << diags.str();
}

TEST(HostileInputs, ExponentialMacroBombHitsTheByteCap)
{
    // Non-recursive doubling chain: E24 expands to 2^24 copies of a
    // token — gigabytes if left alone. The built-in output-byte cap
    // must reject it with a diagnostic, ungoverned, without eating
    // the memory first.
    governor::ScopedAmbientCaps ambient{Caps{}};
    std::string src = "#version 450\n#define E0 x\n";
    for (int i = 1; i <= 24; ++i) {
        src += "#define E" + std::to_string(i) + " E" +
               std::to_string(i - 1) + " E" + std::to_string(i - 1) +
               "\n";
    }
    src += "out vec4 fragColor;\n"
           "void main() { float E24; fragColor = vec4(0.0); }\n";
    DiagEngine diags;
    const uint64_t t0 = nowNs();
    EXPECT_EQ(glsl::tryCompileShader(src, {}, diags), nullptr);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.str().find("macro expansion exceeded"),
              std::string::npos)
        << diags.str();
    EXPECT_NE(diags.str().find("macro bomb"), std::string::npos);
    EXPECT_LT(nowNs() - t0, 30'000'000'000ull);
}

TEST(HostileInputs, ParenNestingBombDiagnosesCleanly)
{
    governor::ScopedAmbientCaps ambient{Caps{}};
    const std::string src =
        "#version 450\nout vec4 fragColor;\nvoid main() { float x = " +
        std::string(30000, '(') + "1.0" + std::string(30000, ')') +
        "; fragColor = vec4(x); }\n";
    DiagEngine diags;
    EXPECT_EQ(glsl::tryCompileShader(src, {}, diags), nullptr);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.str().find("nesting too deep"), std::string::npos)
        << diags.str();
}

TEST(HostileInputs, BlockNestingBombDiagnosesCleanly)
{
    governor::ScopedAmbientCaps ambient{Caps{}};
    std::string src = "#version 450\nout vec4 fragColor;\nvoid main() ";
    for (int i = 0; i < 20000; ++i)
        src += "{";
    src += "fragColor = vec4(1.0);";
    for (int i = 0; i < 20000; ++i)
        src += "}";
    src += "\n";
    DiagEngine diags;
    EXPECT_EQ(glsl::tryCompileShader(src, {}, diags), nullptr);
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_NE(diags.str().find("nesting too deep"), std::string::npos)
        << diags.str();
}

// -------------------------------------------- stall-fault watchdog

TEST(Stall, ParsesAsAFaultMode)
{
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("runtime.measure:1:1:stall");
    ASSERT_EQ(plan.sites.size(), 1u);
    EXPECT_EQ(plan.sites[0].mode, fault::Mode::Stall);
}

TEST(Stall, TripsTheMeasureDeadline)
{
    governor::ScopedAmbientCaps ambient([] {
        Caps c;
        c.deadlineMs = 100;
        return c;
    }());
    fault::ScopedFaultPlan plan("runtime.measure:1:1:stall");
    const gpu::DeviceModel &dev = gpu::deviceModel(gpu::DeviceId::Arm);
    const uint64_t t0 = nowNs();
    try {
        runtime::measureShader(kTinyShader, dev, "governor/stall");
        FAIL() << "expected the deadline watchdog to fire";
    } catch (const governor::ResourceExhausted &e) {
        EXPECT_STREQ(e.dimension(), "deadline");
        EXPECT_STREQ(e.stage(), "runtime.measure");
        EXPECT_EQ(e.limit(), 100u);
    }
    // The stall sleeps just past the deadline, not forever.
    EXPECT_LT(nowNs() - t0, 10'000'000'000ull);
}

TEST(Stall, UngovernedStallDegradesToABoundedDelay)
{
    // Without a deadline a stall is just a (bounded) slow call: the
    // measurement completes and its protocol output is untouched.
    governor::ScopedAmbientCaps ambient{Caps{}};
    const fault::ScopedFaultPlan noFaults = quiesce();
    const gpu::DeviceModel &dev = gpu::deviceModel(gpu::DeviceId::Arm);
    const auto clean =
        runtime::measureShader(kTinyShader, dev, "governor/unstalled");
    fault::ScopedFaultPlan plan("runtime.measure:1:1:stall");
    const auto stalled =
        runtime::measureShader(kTinyShader, dev, "governor/unstalled");
    EXPECT_EQ(clean.meanNs, stalled.meanNs);
    EXPECT_EQ(clean.frameTimesNs, stalled.frameTimesNs);
}

// --------------------------------- schema-16 quarantine round trip

tuner::ShaderResult
tinyResult()
{
    tuner::ShaderResult r;
    r.exploration.shaderName = "tiny/shader";
    r.exploration.family = "tiny";
    r.exploration.preprocessedOriginal = "void main() {}";
    r.exploration.originalSource = "void main(){}";
    r.exploration.exploredFlagCount = 8;
    tuner::Variant v0;
    v0.source = "void main() { /* v0 */ }";
    v0.sourceHash = fnv1a(v0.source);
    v0.producers = {tuner::FlagSet(0), tuner::FlagSet(1)};
    r.exploration.variants = {v0};
    r.exploration.variantOfCombo = {{0, 0}, {1, 0}};
    r.exploration.passthroughVariant = 0;
    tuner::DeviceMeasurement m;
    m.originalMeanNs = 100.0;
    m.variantMeanNs = {90.0};
    r.byDevice.emplace(gpu::DeviceId::Intel, m);
    return r;
}

template <typename T>
void
appendPod(std::string &s, const T &v)
{
    s.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

void
appendString(std::string &s, const std::string &str)
{
    appendPod(s, static_cast<uint64_t>(str.size()));
    s += str;
}

/** saveShard's on-disk layout without the tmp-rename protocol, for
 * crafting bodies whose content hash is correct so only structural
 * validation can reject them. */
void
writeRawShard(const std::string &path, uint64_t key,
              const std::string &body)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    const uint64_t hash = fnv1a(body);
    f.write(reinterpret_cast<const char *>(&key), sizeof(key));
    f.write(reinterpret_cast<const char *>(&hash), sizeof(hash));
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
}

TEST(ShardQuarantine, ReasonsRoundTripThroughSaveAndLoad)
{
    const fault::ScopedFaultPlan noFaults = quiesce();
    ScratchDir dir("qroundtrip");
    const std::string path = dir.path() + "/q.bin";

    tuner::ShaderResult r = tinyResult();
    r.quarantined = {gpu::DeviceId::Amd, gpu::DeviceId::Qualcomm};
    r.quarantineReason[gpu::DeviceId::Amd] =
        "resource exhausted: deadline cap 100 exceeded at "
        "runtime.measure (used 103)";
    // Qualcomm deliberately has no reason entry: reason-less
    // quarantine (older producers) must round-trip too.
    tuner::ExperimentEngine::saveShard(path, 16, r);

    tuner::ShaderResult out;
    ASSERT_TRUE(tuner::ExperimentEngine::loadShard(path, 16, out));
    EXPECT_EQ(tuner::serializeShardBody(out),
              tuner::serializeShardBody(r));
    EXPECT_EQ(out.quarantined, r.quarantined);
    ASSERT_EQ(out.quarantineReason.size(), 1u);
    EXPECT_NE(out.quarantineReason.at(gpu::DeviceId::Amd)
                  .find("deadline"),
              std::string::npos);

    // The quarantine-aware accessor names the reason.
    try {
        out.measurement(gpu::DeviceId::Amd);
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("quarantined"), std::string::npos);
        EXPECT_NE(what.find("deadline"), std::string::npos);
    }
}

TEST(ShardQuarantine, StructurallyInvalidSectionsAreRejected)
{
    const fault::ScopedFaultPlan noFaults = quiesce();
    ScratchDir dir("qreject");
    const std::string path = dir.path() + "/bad.bin";
    tuner::ShaderResult out;

    // (a) A device that is both measured and quarantined.
    tuner::ShaderResult overlap = tinyResult();
    overlap.quarantined = {gpu::DeviceId::Intel}; // also in byDevice
    writeRawShard(path, 16, tuner::serializeShardBody(overlap));
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(path, 16, out));

    // (b) Duplicate device rows inside a hand-built 'Q' section.
    std::string dup = tuner::serializeShardBody(tinyResult());
    appendPod(dup, static_cast<char>('Q'));
    appendPod(dup, static_cast<uint64_t>(2));
    appendPod(dup, static_cast<int>(gpu::DeviceId::Amd));
    appendString(dup, "first");
    appendPod(dup, static_cast<int>(gpu::DeviceId::Amd));
    appendString(dup, "second");
    writeRawShard(path, 16, dup);
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(path, 16, out));

    // (c) Unknown section tag.
    std::string unknown = tuner::serializeShardBody(tinyResult());
    unknown += 'X';
    writeRawShard(path, 16, unknown);
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(path, 16, out));

    // (d) A 'P' section after a 'Q' section (order violation).
    tuner::ShaderResult qr = tinyResult();
    qr.quarantined = {gpu::DeviceId::Amd};
    std::string misordered = tuner::serializeShardBody(qr);
    appendPod(misordered, static_cast<char>('P'));
    appendPod(misordered, static_cast<uint64_t>(1));
    appendString(misordered, "gvn");
    appendPod(misordered, static_cast<int64_t>(0));
    writeRawShard(path, 16, misordered);
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(path, 16, out));

    // A pristine quarantine-annotated shard still loads.
    writeRawShard(path, 16, tuner::serializeShardBody(qr));
    EXPECT_TRUE(tuner::ExperimentEngine::loadShard(path, 16, out));
}

// ----------------------------------------- governed campaign runs

std::vector<corpus::CorpusShader>
pairCorpus()
{
    std::vector<corpus::CorpusShader> shaders;
    for (const char *name : {"simple/color_fill", "simple/grayscale"}) {
        const corpus::CorpusShader *s = corpus::findShader(name);
        EXPECT_NE(s, nullptr) << name;
        shaders.push_back(*s);
    }
    return shaders;
}

std::vector<std::string>
campaignBodies(const tuner::ExperimentEngine &engine)
{
    std::vector<std::string> bodies;
    for (const auto &r : engine.results())
        bodies.push_back(tuner::serializeShardBody(r));
    return bodies;
}

TEST(GovernedCampaign, GenerousBudgetsAreByteIdentical)
{
    const fault::ScopedFaultPlan noFaults = quiesce();
    const auto shaders = pairCorpus();

    std::vector<std::string> reference;
    {
        governor::ScopedAmbientCaps ungoverned{Caps{}};
        tuner::ExperimentEngine engine(shaders, /*threads=*/1);
        ASSERT_TRUE(engine.health().healthy());
        reference = campaignBodies(engine);
    }

    // Generous-but-finite budgets on every dimension plus a deadline:
    // every worker item runs governed, and the campaign bytes must not
    // move by a single bit.
    Caps caps;
    caps.deadlineMs = 60'000;
    for (int i = 0; i < governor::kDimCount; ++i)
        caps.dim[i] = 1ull << 40;
    caps[Dim::ParseDepth] = 1024;
    caps[Dim::SemaDepth] = 1024;
    governor::ScopedAmbientCaps ambient(caps);
    tuner::ExperimentEngine governed(shaders, /*threads=*/2);
    ASSERT_TRUE(governed.health().healthy())
        << governed.health().summary();
    EXPECT_EQ(campaignBodies(governed), reference);
}

TEST(GovernedCampaign, StalledItemsQuarantineAndResumeCleanly)
{
    const fault::ScopedFaultPlan noFaults = quiesce();
    const auto shaders = pairCorpus();
    const size_t n_dev = gpu::allDevices().size();
    ScratchDir dir("stall_campaign");

    std::vector<std::string> reference;
    {
        governor::ScopedAmbientCaps ungoverned{Caps{}};
        tuner::ExperimentEngine engine(shaders, /*threads=*/1);
        ASSERT_TRUE(engine.health().healthy());
        reference = campaignBodies(engine);
    }

    // Checkpoint the first shader's shard ahead of the storm.
    {
        governor::ScopedAmbientCaps ungoverned{Caps{}};
        std::vector<corpus::CorpusShader> first = {shaders[0]};
        tuner::ExperimentEngine engine(first, /*threads=*/1,
                                       dir.path());
        ASSERT_TRUE(engine.health().healthy());
    }

    // Every measurement stalls past the per-item deadline: the cached
    // shader loads untouched, every item of the other shader dies on
    // the watchdog and is quarantined with the structured reason — and
    // the campaign still completes instead of hanging.
    {
        governor::ScopedAmbientCaps ambient([] {
            Caps c;
            c.deadlineMs = 400;
            return c;
        }());
        fault::ScopedFaultPlan plan("runtime.measure:1:1:stall");
        tuner::ExperimentEngine engine(shaders, /*threads=*/1,
                                       dir.path());
        const tuner::CampaignHealth &health = engine.health();
        EXPECT_FALSE(health.healthy());
        ASSERT_EQ(health.quarantined.size(), n_dev);
        for (const auto &q : health.quarantined) {
            EXPECT_EQ(q.shader, "simple/grayscale");
            EXPECT_NE(q.error.find("deadline"), std::string::npos)
                << q.error;
            EXPECT_EQ(q.attempts, 1)
                << "exhaustion must not burn retries";
        }
        const auto &ok = engine.result("simple/color_fill");
        EXPECT_TRUE(ok.quarantined.empty());
        EXPECT_EQ(ok.byDevice.size(), n_dev);
        const auto &bad = engine.result("simple/grayscale");
        EXPECT_EQ(bad.quarantined.size(), n_dev);
        EXPECT_EQ(bad.quarantineReason.size(), n_dev);
        for (const auto &[dev, why] : bad.quarantineReason)
            EXPECT_NE(why.find("deadline"), std::string::npos) << why;
    }

    // Faults and budgets off: the campaign resumes from the surviving
    // shard and re-runs only the quarantined shader, reproducing the
    // clean bytes exactly.
    governor::ScopedAmbientCaps ungoverned{Caps{}};
    tuner::ExperimentEngine resumed(shaders, /*threads=*/1, dir.path());
    EXPECT_TRUE(resumed.health().healthy());
    EXPECT_EQ(resumed.health().itemsCompleted, n_dev)
        << "only the quarantined shader re-runs";
    EXPECT_EQ(campaignBodies(resumed), reference);
}

} // namespace
} // namespace gsopt
