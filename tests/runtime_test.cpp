/**
 * @file
 * Tests for the measurement framework: protocol shape (100 frames x 5
 * reps), deterministic noise, vertex shader generation, and the
 * interface-driven auto-initialisation.
 */
#include <gtest/gtest.h>

#include "glsl/frontend.h"
#include "support/strings.h"
#include "runtime/framework.h"

namespace gsopt::runtime {
namespace {

const char *kShader = R"(#version 450
in vec2 uv;
in vec3 normal;
uniform sampler2D tex;
uniform vec4 tint;
uniform mat4 transform;
uniform int mode;
out vec4 color;
void main() {
    color = texture(tex, uv) * tint * vec4(normal, float(mode)) +
            transform * vec4(uv, 0.0, 1.0);
}
)";

TEST(Framework, ProtocolSampleCounts)
{
    auto r = measureShader(kShader,
                           gpu::deviceModel(gpu::DeviceId::Intel),
                           "proto");
    EXPECT_EQ(r.frameTimesNs.size(),
              static_cast<size_t>(kFramesPerRun * kRepetitions));
    EXPECT_GT(r.meanNs, 0.0);
    EXPECT_GT(r.medianNs, 0.0);
}

TEST(Framework, DeterministicGivenLabel)
{
    const auto &dev = gpu::deviceModel(gpu::DeviceId::Arm);
    auto a = measureShader(kShader, dev, "same-label");
    auto b = measureShader(kShader, dev, "same-label");
    EXPECT_EQ(a.frameTimesNs, b.frameTimesNs);
    auto c = measureShader(kShader, dev, "other-label");
    EXPECT_NE(a.frameTimesNs, c.frameTimesNs);
    // Different labels perturb noise, not the mean signal.
    EXPECT_NEAR(a.meanNs, c.meanNs, a.meanNs * 0.05);
}

TEST(Framework, NoiseMatchesDeviceSigma)
{
    const auto &intel = gpu::deviceModel(gpu::DeviceId::Intel);
    const auto &qc = gpu::deviceModel(gpu::DeviceId::Qualcomm);
    auto ri = measureShader(kShader, intel, "noise");
    auto rq = measureShader(kShader, qc, "noise");
    // Relative spread tracks the configured sigma (Intel quietest).
    EXPECT_LT(ri.stddevNs / ri.meanNs, rq.stddevNs / rq.meanNs);
}

TEST(Framework, MobileUsesFewerTriangles)
{
    const auto &arm = gpu::deviceModel(gpu::DeviceId::Arm);
    EXPECT_EQ(arm.trianglesPerFrame, 100);
}

TEST(Framework, SpeedupSign)
{
    const auto &dev = gpu::deviceModel(gpu::DeviceId::Amd);
    auto slow = measureShader(R"(#version 450
in vec2 uv; out vec4 c;
void main() {
    vec4 acc = vec4(0.0);
    acc += vec4(sin(uv.x), cos(uv.y), sin(uv.x * 2.0), 1.0);
    acc += vec4(sin(uv.x * 3.0), cos(uv.y * 4.0), exp(uv.x), 1.0);
    c = acc;
}
)",
                              dev, "slow");
    auto fast = measureShader(
        "#version 450\nout vec4 c;\nvoid main() { c = vec4(0.5); }",
        dev, "fast");
    EXPECT_GT(speedupPercent(slow, fast), 0.0);
    EXPECT_LT(speedupPercent(fast, slow), 0.0);
}

TEST(VertexGen, MatchesFragmentInputs)
{
    glsl::CompiledShader cs = glsl::compileShader(kShader);
    std::string vs = generateVertexShader(cs.interface);
    EXPECT_NE(vs.find("out vec2 uv;"), std::string::npos);
    EXPECT_NE(vs.find("out vec3 normal;"), std::string::npos);
    EXPECT_NE(vs.find("uniform float quad_depth;"), std::string::npos);
    EXPECT_NE(vs.find("gl_Position"), std::string::npos);
    // The generated vertex shader must pass our front end once the
    // vertex-stage builtin (which the fragment-only subset does not
    // declare) is renamed to a plain output.
    std::string checkable = vs;
    size_t pos = checkable.find("void main()");
    ASSERT_NE(pos, std::string::npos);
    checkable.insert(pos, "out vec4 vs_position;\n");
    checkable = replaceAll(checkable, "gl_Position", "vs_position");
    EXPECT_NO_THROW(glsl::compileShader(checkable));
}

TEST(AutoInit, DefaultsMatchPaperRules)
{
    glsl::CompiledShader cs = glsl::compileShader(kShader);
    ir::InterpEnv env = defaultEnvironment(cs.interface);
    // floats 0.5
    ASSERT_TRUE(env.uniforms.count("tint"));
    EXPECT_DOUBLE_EQ(env.uniforms["tint"][0], 0.5);
    // ints 1
    ASSERT_TRUE(env.uniforms.count("mode"));
    EXPECT_DOUBLE_EQ(env.uniforms["mode"][0], 1.0);
    // matrices identity
    ASSERT_TRUE(env.uniforms.count("transform"));
    EXPECT_DOUBLE_EQ(env.uniforms["transform"][0], 1.0);
    EXPECT_DOUBLE_EQ(env.uniforms["transform"][1], 0.0);
    EXPECT_DOUBLE_EQ(env.uniforms["transform"][5], 1.0);
    // inputs 0.5
    ASSERT_TRUE(env.inputs.count("uv"));
    EXPECT_DOUBLE_EQ(env.inputs["uv"][1], 0.5);
    // samplers: not in the uniform map (procedural default applies)
    EXPECT_FALSE(env.uniforms.count("tex"));
}

} // namespace
} // namespace gsopt::runtime
