/**
 * @file
 * Tests for the GPU device models, codegen cost model, and driver
 * compiler: ISA-shape differences, register pressure/occupancy/spill
 * behaviour, JIT heuristics, and the Mali static analyser.
 */
#include <gtest/gtest.h>

#include "emit/offline.h"
#include "gpu/codegen.h"
#include "gpu/device.h"
#include "gpu/driver.h"

namespace gsopt::gpu {
namespace {

const DeviceModel &
dev(DeviceId id)
{
    return deviceModel(id);
}

TEST(Device, AllFiveConfigured)
{
    auto all = allDevices();
    ASSERT_EQ(all.size(), 5u);
    for (DeviceId id : all) {
        const DeviceModel &d = dev(id);
        EXPECT_FALSE(d.name.empty());
        EXPECT_GT(d.clockGhz, 0.0);
        EXPECT_GT(d.shaderUnits, 0);
        EXPECT_GT(d.noiseSigma, 0.0);
    }
}

TEST(Device, PaperPlatformProperties)
{
    // Mobile platforms use 100 triangles per frame (paper IV-B).
    EXPECT_EQ(dev(DeviceId::Arm).trianglesPerFrame, 100);
    EXPECT_EQ(dev(DeviceId::Qualcomm).trianglesPerFrame, 100);
    EXPECT_EQ(dev(DeviceId::Nvidia).trianglesPerFrame, 1000);
    // Intel is the least noisy platform (paper VI-D7).
    for (DeviceId id : allDevices()) {
        if (id != DeviceId::Intel) {
            EXPECT_LT(dev(DeviceId::Intel).noiseSigma,
                      dev(id).noiseSigma);
        }
    }
    // Mali is the only vec4 machine.
    EXPECT_EQ(dev(DeviceId::Arm).isa, IsaKind::Vec4);
    EXPECT_EQ(dev(DeviceId::Nvidia).isa, IsaKind::Scalar);
}

TEST(Driver, CompileCacheHitsOnRepeatedTextDevicePairs)
{
    const std::string src =
        "in vec2 uv; out vec4 c; void main() { c = vec4(uv, 0.5, 1.0); "
        "}";
    const DeviceModel &nv = dev(DeviceId::Nvidia);

    DriverCacheStats before = driverCacheStats();
    ShaderBinary a = driverCompile(src, nv);
    ShaderBinary b = driverCompile(src, nv);
    DriverCacheStats after = driverCacheStats();

    // Second compile of the same (text, device) pair is a hit and
    // returns the identical binary.
    EXPECT_GE(after.hits, before.hits + 1);
    EXPECT_DOUBLE_EQ(a.cyclesPerFragment, b.cyclesPerFragment);
    EXPECT_DOUBLE_EQ(a.occupancyWaves, b.occupancyWaves);

    // A different device misses; a tweaked copy of the same device
    // (ablation-style) must also miss — the key covers configuration,
    // not just DeviceId.
    DriverCacheStats s0 = driverCacheStats();
    driverCompile(src, dev(DeviceId::Arm));
    DeviceModel tweaked = nv;
    tweaked.jitFlags = passes::OptFlags{};
    tweaked.jitUnrollTrips = 0;
    ShaderBinary t = driverCompile(src, tweaked);
    DriverCacheStats s1 = driverCacheStats();
    EXPECT_GE(s1.misses, s0.misses + 2);
    (void)t;

    // The uncached path always agrees with the cached result.
    ShaderBinary fresh = driverCompileUncached(src, nv);
    EXPECT_DOUBLE_EQ(fresh.cyclesPerFragment, a.cyclesPerFragment);
}

TEST(Driver, CompileCacheLruBoundEvictsColdEntries)
{
    // Exclusive use of the process-wide cache: start empty, restore
    // the unbounded default on every exit path.
    clearDriverCache();
    struct Uncap
    {
        ~Uncap()
        {
            setDriverCacheCap(0);
            clearDriverCache();
        }
    } uncap;

    auto src = [](int i) {
        return "in vec2 uv; out vec4 c; void main() { c = vec4(uv, " +
               std::to_string(i) + ".0 / 8.0, 1.0); }";
    };
    const DeviceModel &nv = dev(DeviceId::Nvidia);

    setDriverCacheCap(3);
    EXPECT_EQ(driverCacheStats().capacity, 3u);

    // Fill to the cap: 3 distinct texts, no evictions yet.
    for (int i = 0; i < 3; ++i)
        driverCompile(src(i), nv);
    DriverCacheStats s = driverCacheStats();
    EXPECT_EQ(s.entries, 3u);
    EXPECT_EQ(s.evictions, 0u);

    // Touch src(0) so src(1) becomes the LRU victim, then overflow.
    driverCompile(src(0), nv);
    driverCompile(src(3), nv);
    s = driverCacheStats();
    EXPECT_EQ(s.entries, 3u);
    EXPECT_EQ(s.evictions, 1u);

    // src(0) was kept warm (hit); src(1) was evicted (miss re-fills,
    // evicting again).
    const uint64_t hits_before = driverCacheStats().hits;
    const uint64_t misses_before = driverCacheStats().misses;
    driverCompile(src(0), nv);
    EXPECT_EQ(driverCacheStats().hits, hits_before + 1);
    driverCompile(src(1), nv);
    s = driverCacheStats();
    EXPECT_EQ(s.misses, misses_before + 1);
    EXPECT_EQ(s.entries, 3u);
    EXPECT_EQ(s.evictions, 2u);

    // Shrinking the cap evicts immediately; 0 restores unbounded.
    setDriverCacheCap(1);
    s = driverCacheStats();
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.evictions, 4u);
    setDriverCacheCap(0);
    for (int i = 0; i < 8; ++i)
        driverCompile(src(i), nv);
    s = driverCacheStats();
    EXPECT_EQ(s.entries, 8u);
    EXPECT_EQ(s.evictions, 4u);
    EXPECT_EQ(s.capacity, 0u);
}

TEST(Codegen, ScalarIsaPaysPerLane)
{
    auto m = emit::compileToIr(
        "in vec4 a; in vec4 b; out vec4 c; void main() { c = a * b; }");
    CostSummary scalar = analyzeModule(*m, dev(DeviceId::Nvidia));
    CostSummary vec4 = analyzeModule(*m, dev(DeviceId::Arm));
    // One vec4 multiply: 4 scalar slots vs ~1 vec4 slot.
    EXPECT_GE(scalar.aluCycles, 4.0);
    EXPECT_LE(vec4.aluCycles, 1.5);
}

TEST(Codegen, TexturesCounted)
{
    auto m = emit::compileToIr(R"(
        uniform sampler2D t;
        in vec2 uv;
        out vec4 c;
        void main() {
            c = texture(t, uv) + texture(t, uv * 2.0) +
                texture(t, uv * 3.0);
        }
    )");
    CostSummary cost = analyzeModule(*m, dev(DeviceId::Intel));
    EXPECT_EQ(cost.textureCount, 3);
    EXPECT_GT(cost.texIssueCycles, 0.0);
}

TEST(Codegen, LoopsMultiplyCost)
{
    auto one = emit::compileToIr(R"(
        in float x; out float c;
        void main() {
            float s = 0.0;
            for (int i = 0; i < 2; i++) { s += sin(x + float(i)); }
            c = s;
        }
    )");
    auto big = emit::compileToIr(R"(
        in float x; out float c;
        void main() {
            float s = 0.0;
            for (int i = 0; i < 16; i++) { s += sin(x + float(i)); }
            c = s;
        }
    )");
    CostSummary a = analyzeModule(*one, dev(DeviceId::Amd));
    CostSummary b = analyzeModule(*big, dev(DeviceId::Amd));
    EXPECT_GT(b.aluCycles, a.aluCycles * 4.0);
}

TEST(Codegen, BranchesUseLongestPathPlusDivergence)
{
    auto m = emit::compileToIr(R"(
        in float x; out float c;
        void main() {
            float r = 0.0;
            if (x > 0.5) {
                r = sin(x) + cos(x) + exp(x);
            } else {
                r = x * 2.0;
            }
            c = r;
        }
    )");
    const DeviceModel &d = dev(DeviceId::Nvidia);
    CostSummary cost = analyzeModule(*m, d);
    // At least the expensive arm, plus some of the cheap one.
    EXPECT_GE(cost.aluCycles, 3 * d.costTranscendental);
    EXPECT_GT(cost.branchCycles, 0.0);
}

TEST(Codegen, RegisterPressureGrowsWithLiveValues)
{
    auto small = emit::compileToIr(
        "in vec4 a; out vec4 c; void main() { c = a * 2.0; }");
    auto wide = emit::compileToIr(R"(
        uniform sampler2D t;
        in vec2 uv;
        out vec4 c;
        void main() {
            vec4 s0 = texture(t, uv);
            vec4 s1 = texture(t, uv + 0.01);
            vec4 s2 = texture(t, uv + 0.02);
            vec4 s3 = texture(t, uv + 0.03);
            vec4 s4 = texture(t, uv + 0.04);
            vec4 s5 = texture(t, uv + 0.05);
            vec4 s6 = texture(t, uv + 0.06);
            vec4 s7 = texture(t, uv + 0.07);
            c = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7));
        }
    )");
    const DeviceModel &d = dev(DeviceId::Nvidia);
    EXPECT_GT(analyzeModule(*wide, d).maxLiveRegs,
              analyzeModule(*small, d).maxLiveRegs + 8.0);
}

TEST(Codegen, IfArmsOverlapNotSum)
{
    // Liveness of two branch arms is a max, not a sum: values of the
    // then-arm and else-arm never coexist.
    auto m = emit::compileToIr(R"(
        in float x; out vec4 c;
        void main() {
            vec4 r = vec4(0.0);
            if (x > 0.5) {
                vec4 a0 = vec4(x); vec4 a1 = a0 * 2.0;
                vec4 a2 = a1 + a0; vec4 a3 = a2 * a1;
                r = a3 + a2 + a1 + a0;
            } else {
                vec4 b0 = vec4(x); vec4 b1 = b0 * 3.0;
                vec4 b2 = b1 + b0; vec4 b3 = b2 * b1;
                r = b3 + b2 + b1 + b0;
            }
            c = r;
        }
    )");
    // Disable forwarding effects by analyzing the raw lowered module.
    const DeviceModel &d = dev(DeviceId::Nvidia);
    CostSummary cost = analyzeModule(*m, d);
    // Each arm holds ~4 vec4 temps (16 lanes); sum would be >32.
    EXPECT_LT(cost.maxLiveRegs, 30.0);
}

TEST(Driver, CompilesAndCosts)
{
    ShaderBinary bin = driverCompile(
        "#version 450\nin vec2 uv;\nuniform sampler2D t;\nout vec4 "
        "c;\nvoid main() { c = texture(t, uv); }",
        dev(DeviceId::Intel));
    EXPECT_GT(bin.cyclesPerFragment, 0.0);
    EXPECT_EQ(bin.cost.textureCount, 1);
    EXPECT_EQ(bin.spilledRegs, 0.0);
    EXPECT_GT(bin.occupancyWaves, 1.0);
}

TEST(Driver, JitUnrollConvergesWithOfflineUnroll)
{
    // On a platform whose JIT unrolls within budget, the offline
    // unrolled shader compiles to (nearly) the same cost as the
    // original: the paper's "JIT already catches it" effect.
    const char *src = R"(#version 450
in float x; out float c;
void main() {
    float s = 0.0;
    for (int i = 0; i < 8; i++) { s += x * float(i); }
    c = s;
}
)";
    passes::OptFlags unroll_only;
    unroll_only.unroll = true;
    std::string unrolled = emit::optimizeShaderSource(src, unroll_only);

    const DeviceModel &nv = dev(DeviceId::Nvidia);
    double t_orig = driverCompile(src, nv).cyclesPerFragment;
    double t_unrolled = driverCompile(unrolled, nv).cyclesPerFragment;
    EXPECT_NEAR(t_orig, t_unrolled, t_orig * 0.02);

    // AMD's Mesa-era JIT does not unroll: the offline version wins.
    const DeviceModel &amd = dev(DeviceId::Amd);
    double a_orig = driverCompile(src, amd).cyclesPerFragment;
    double a_unrolled = driverCompile(unrolled, amd).cyclesPerFragment;
    EXPECT_LT(a_unrolled, a_orig * 0.97);
}

TEST(Driver, SpillsPastThreshold)
{
    // Construct a shader with absurd register pressure via many live
    // texture results on the pressure-sensitive Mali model.
    std::string src = "#version 450\nin vec2 uv;\nuniform sampler2D "
                      "t;\nout vec4 c;\nvoid main() {\n";
    for (int i = 0; i < 40; ++i)
        src += "    vec4 s" + std::to_string(i) + " = texture(t, uv + " +
               std::to_string(0.001 * i) + ");\n";
    src += "    vec4 acc = vec4(0.0);\n";
    // Sum in reverse so every sample stays live to the end.
    for (int i = 39; i >= 0; --i)
        src += "    acc = acc + s" + std::to_string(i) + ";\n";
    src += "    c = acc;\n}\n";
    ShaderBinary bin = driverCompile(src, dev(DeviceId::Arm));
    EXPECT_GT(bin.spilledRegs, 0.0);
    // The allocator spills to preserve occupancy, so occupancy stays
    // bounded below by the spill threshold's implied wave count.
    EXPECT_GE(bin.occupancyWaves, 1.0);
    EXPECT_GT(bin.cyclesPerFragment,
              bin.cost.issueCycles()); // spill traffic is charged
}

TEST(Driver, IcachePenaltyOnAdreno)
{
    std::string big = "#version 450\nin float x;\nout float c;\nvoid "
                      "main() {\n    float s = x;\n";
    for (int i = 0; i < 400; ++i)
        big += "    s = s * 1.0001 + " + std::to_string(i % 7) + ".0;\n";
    big += "    c = s;\n}\n";
    ShaderBinary bin = driverCompile(big, dev(DeviceId::Qualcomm));
    EXPECT_GT(bin.icacheStallCycles, 0.0);
    ShaderBinary nv = driverCompile(big, dev(DeviceId::Nvidia));
    EXPECT_EQ(nv.icacheStallCycles, 0.0);
}

TEST(Driver, DrawTimeScalesWithFragments)
{
    ShaderBinary bin = driverCompile(
        "#version 450\nout vec4 c;\nvoid main() { c = vec4(0.5); }",
        dev(DeviceId::Intel));
    double t1 = drawTimeNs(bin, dev(DeviceId::Intel), 250000);
    double t2 = drawTimeNs(bin, dev(DeviceId::Intel), 500000);
    EXPECT_NEAR(t2, 2.0 * t1, 1e-9 * t2);
}

TEST(MaliAnalysis, ReportsThreeCategories)
{
    auto m = emit::compileToIr(R"(
        uniform sampler2D t;
        in vec2 uv;
        out vec4 c;
        void main() {
            vec4 a = texture(t, uv);
            c = a * 2.0 + vec4(uv, 0.0, 1.0);
        }
    )");
    MaliStaticCycles cycles = maliStaticAnalysis(*m);
    EXPECT_GT(cycles.arithmetic, 0.0);
    EXPECT_GT(cycles.loadStore, 0.0);
    EXPECT_GT(cycles.texture, 0.0);
    EXPECT_DOUBLE_EQ(cycles.total(), cycles.arithmetic +
                                         cycles.loadStore +
                                         cycles.texture);
}

TEST(MaliAnalysis, LongestPathDominates)
{
    auto branchy = emit::compileToIr(R"(
        in float x; out float c;
        void main() {
            float r;
            if (x > 0.5) { r = sin(x) + cos(x); } else { r = x; }
            c = r;
        }
    )");
    auto straight = emit::compileToIr(R"(
        in float x; out float c;
        void main() { c = sin(x) + cos(x); }
    )");
    // The branchy version's longest path includes the transcendental
    // arm, so it can't be cheaper than the straight-line version.
    EXPECT_GE(maliStaticAnalysis(*branchy).total(),
              maliStaticAnalysis(*straight).total());
}

} // namespace
} // namespace gsopt::gpu
