/**
 * @file
 * Fault-tolerance torture harness: the deterministic fault-injection
 * registry (support/fault), bounded retry (support/retry), and the
 * campaign runtime's resilience contract — under injected driver,
 * measurement, worker, and shard-IO faults a campaign must produce
 * shard bytes *byte-identical* to a fault-free run (transients are
 * retried away; torn checkpoints are never published; unrecoverable
 * items are quarantined, never silently wrong), and a campaign killed
 * mid-run must resume from its completed shards instead of re-running
 * them. GSOPT_TORTURE_ITERS widens the randomized-plan sweep (nightly
 * CI runs a deep pass alongside the fuzz job).
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "gpu/driver.h"
#include "runtime/framework.h"
#include "support/fault.h"
#include "support/retry.h"
#include "support/rng.h"
#include "test_scratch.h"
#include "tuner/experiment.h"
#include "tuner/explore.h"

namespace gsopt {
namespace {

namespace fs = std::filesystem;

// --------------------------------------------------------- helpers

using testutil::ScopedEnv;
using testutil::ScratchDir;

/** Masks any ambient GSOPT_FAULTS plan (the CI fault job installs
 * one process-wide) for tests that assert fault-free behaviour; the
 * ambient plan is restored on scope exit. */
fault::ScopedFaultPlan
quiesce()
{
    return fault::ScopedFaultPlan(fault::FaultPlan{});
}

std::vector<corpus::CorpusShader>
miniCorpus()
{
    std::vector<corpus::CorpusShader> shaders;
    for (const char *name :
         {"simple/color_fill", "simple/grayscale", "blur/weighted9",
          "tonemap/aces"}) {
        const corpus::CorpusShader *s = corpus::findShader(name);
        EXPECT_NE(s, nullptr) << name;
        shaders.push_back(*s);
    }
    return shaders;
}

/** Per-shader serialized bodies of a campaign over @p shaders. */
std::vector<std::string>
campaignBodies(const tuner::ExperimentEngine &engine)
{
    std::vector<std::string> bodies;
    for (const auto &r : engine.results())
        bodies.push_back(tuner::serializeShardBody(r));
    return bodies;
}

/** The fault-free reference campaign (computed once, shared). */
const std::vector<std::string> &
referenceBodies()
{
    static const std::vector<std::string> bodies = [] {
        const fault::ScopedFaultPlan noAmbientFaults = quiesce();
        tuner::ExperimentEngine engine(miniCorpus(), /*threads=*/1);
        EXPECT_TRUE(engine.health().healthy());
        return campaignBodies(engine);
    }();
    return bodies;
}

int
tortureIters()
{
    if (const char *env = std::getenv("GSOPT_TORTURE_ITERS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<int>(n);
    }
    return 3;
}

// -------------------------------------------- fault registry units

TEST(FaultPlan, ParsesSitesRatesSeedsAndModes)
{
    const fault::FaultPlan plan = fault::FaultPlan::parse(
        "driver.compile:0.25:7,shard.write:1:9,"
        "runtime.measure:0.5:3:delay");
    ASSERT_EQ(plan.sites.size(), 3u);
    EXPECT_EQ(plan.sites[0].site, "driver.compile");
    EXPECT_DOUBLE_EQ(plan.sites[0].rate, 0.25);
    EXPECT_EQ(plan.sites[0].seed, 7u);
    EXPECT_EQ(plan.sites[0].mode, fault::Mode::Throw);
    // shard.write defaults to tearing, the natural write failure.
    EXPECT_EQ(plan.sites[1].mode, fault::Mode::Tear);
    EXPECT_EQ(plan.sites[2].mode, fault::Mode::Delay);
}

TEST(FaultPlan, RejectsGarbage)
{
    EXPECT_THROW(fault::FaultPlan::parse("nonsense.site:0.5:1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("driver.compile:2:1"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("driver.compile:0.5"),
                 std::invalid_argument);
    EXPECT_THROW(fault::FaultPlan::parse("driver.compile:0.5:1:wat"),
                 std::invalid_argument);
}

TEST(FaultRegistry, InactiveWithoutPlanAndScopedRestore)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    EXPECT_FALSE(fault::active());
    EXPECT_NO_THROW(fault::point("driver.compile"));
    EXPECT_EQ(fault::tearPoint("shard.write", 100), 100u);
    EXPECT_FALSE(fault::triggered("shard.read"));
    {
        fault::ScopedFaultPlan outer("driver.compile:1:1");
        EXPECT_TRUE(fault::active());
        EXPECT_THROW(fault::point("driver.compile"),
                     fault::TransientError);
        // Unarmed sites stay quiet even while a plan is active.
        EXPECT_NO_THROW(fault::point("runtime.measure"));
        {
            fault::ScopedFaultPlan inner("runtime.measure:1:1");
            EXPECT_THROW(fault::point("runtime.measure"),
                         fault::TransientError);
            // The inner plan replaced the outer wholesale.
            EXPECT_NO_THROW(fault::point("driver.compile"));
        }
        EXPECT_THROW(fault::point("driver.compile"),
                     fault::TransientError);
    }
    EXPECT_FALSE(fault::active());
}

TEST(FaultRegistry, DrawsAreDeterministicPerSeed)
{
    auto pattern = [](uint64_t seed) {
        fault::FaultPlan plan;
        fault::SiteConfig cfg;
        cfg.site = "shard.read";
        cfg.rate = 0.5;
        cfg.seed = seed;
        plan.sites.push_back(cfg);
        fault::ScopedFaultPlan scoped(plan);
        std::string bits;
        for (int i = 0; i < 64; ++i)
            bits += fault::triggered("shard.read") ? '1' : '0';
        return bits;
    };
    const std::string a = pattern(42), b = pattern(42),
                      c = pattern(43);
    EXPECT_EQ(a, b);              // same seed, same injections
    EXPECT_NE(a, c);              // different seed, different stream
    EXPECT_NE(a.find('1'), std::string::npos); // rate 0.5 does fire
    EXPECT_NE(a.find('0'), std::string::npos); // ... and does miss
}

TEST(FaultRegistry, TearPointReturnsStrictPrefixAndCounts)
{
    fault::ScopedFaultPlan plan("shard.write:1:5");
    for (int i = 0; i < 16; ++i) {
        const size_t n = fault::tearPoint("shard.write", 1000);
        EXPECT_LT(n, 1000u);
    }
    const fault::SiteStats stats = fault::siteStats("shard.write");
    EXPECT_EQ(stats.evaluations, 16u);
    EXPECT_EQ(stats.injected, 16u);
    EXPECT_EQ(fault::siteStats("driver.compile").evaluations, 0u);
}

// ------------------------------------------------------ retry units

TEST(Retry, SucceedsAfterTransientFailures)
{
    RetryPolicy policy;
    policy.maxAttempts = 4;
    policy.baseDelayUs = 1; // keep the test fast
    int calls = 0, attempts = 0;
    const int result = retryTransient(
        policy, "test/flaky",
        [&] {
            if (++calls < 3)
                throw fault::TransientError("flaky");
            return 99;
        },
        &attempts);
    EXPECT_EQ(result, 99);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(attempts, 3);
}

TEST(Retry, ExhaustsAndRethrowsTransient)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.baseDelayUs = 1;
    int calls = 0, attempts = 0;
    EXPECT_THROW(retryTransient(
                     policy, "test/always",
                     [&]() -> int {
                         ++calls;
                         throw fault::TransientError("always");
                     },
                     &attempts),
                 fault::TransientError);
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(attempts, 3);
}

TEST(Retry, NonTransientPropagatesImmediately)
{
    RetryPolicy policy;
    policy.maxAttempts = 5;
    policy.baseDelayUs = 1;
    int calls = 0;
    EXPECT_THROW(retryTransient(policy, "test/real",
                                [&]() -> int {
                                    ++calls;
                                    throw std::logic_error("real bug");
                                }),
                 std::logic_error);
    EXPECT_EQ(calls, 1);
}

TEST(Retry, MeasurementsAbsorbFaultsBitIdentically)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    const gpu::DeviceModel &dev =
        gpu::deviceModel(gpu::DeviceId::Nvidia);
    const std::string src = "#version 450\n"
                            "out vec4 frag;\n"
                            "void main() { frag = vec4(0.25); }\n";
    const auto clean = runtime::measureShader(src, dev, "fault/unit");
    {
        // Heavy transient rates on both the driver and the harness:
        // the internal bounded retries must absorb them and reproduce
        // the exact same timing protocol output.
        fault::ScopedFaultPlan plan(
            "driver.compile:0.5:11,runtime.measure:0.5:13");
        gpu::clearDriverCache(); // force real compiles under faults
        const auto faulted =
            runtime::measureShader(src, dev, "fault/unit");
        EXPECT_EQ(clean.meanNs, faulted.meanNs);
        EXPECT_EQ(clean.frameTimesNs, faulted.frameTimesNs);
        EXPECT_GT(fault::siteStats("runtime.measure").evaluations, 0u);
    }
}

// ------------------------------------------- shard IO crash safety

tuner::ShaderResult
tinyResult()
{
    tuner::ShaderResult r;
    r.exploration.shaderName = "tiny/shader";
    r.exploration.family = "tiny";
    r.exploration.preprocessedOriginal = "void main() {}";
    r.exploration.originalSource = "void main(){}";
    r.exploration.exploredFlagCount = 8;
    tuner::Variant v0;
    v0.source = "void main() { /* v0 */ }";
    v0.sourceHash = fnv1a(v0.source);
    v0.producers = {tuner::FlagSet(0), tuner::FlagSet(2)};
    tuner::Variant v1;
    v1.source = "void main() { /* v1 */ }";
    v1.sourceHash = fnv1a(v1.source);
    v1.producers = {tuner::FlagSet(1)};
    r.exploration.variants = {v0, v1};
    r.exploration.variantOfCombo = {{0, 0}, {1, 1}, {2, 0}};
    r.exploration.passthroughVariant = 0;
    tuner::DeviceMeasurement m;
    m.originalMeanNs = 100.0;
    m.variantMeanNs = {90.0, 110.0};
    r.byDevice.emplace(gpu::DeviceId::Intel, m);
    m.originalMeanNs = 200.0;
    m.variantMeanNs = {150.0, 210.0};
    r.byDevice.emplace(gpu::DeviceId::Arm, m);
    return r;
}

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    return data;
}

TEST(ShardIO, RoundTripsAndPublishesAtomically)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    ScratchDir dir("roundtrip");
    const std::string path = dir.path() + "/tiny.bin";
    const tuner::ShaderResult r = tinyResult();
    tuner::ExperimentEngine::saveShard(path, 0xabcdefull, r);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp")); // published, not parked

    tuner::ShaderResult out;
    ASSERT_TRUE(
        tuner::ExperimentEngine::loadShard(path, 0xabcdefull, out));
    EXPECT_EQ(tuner::serializeShardBody(out),
              tuner::serializeShardBody(r));

    // A different key is someone else's shard: reject, don't parse.
    EXPECT_FALSE(
        tuner::ExperimentEngine::loadShard(path, 0x1234ull, out));
}

TEST(ShardIO, TornWriteNeverClobbersThePublishedShard)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    ScratchDir dir("torn");
    const std::string path = dir.path() + "/tiny.bin";
    const tuner::ShaderResult r = tinyResult();
    tuner::ExperimentEngine::saveShard(path, 1, r);
    const std::string before = readFile(path);
    ASSERT_FALSE(before.empty());

    // Every subsequent checkpoint attempt tears mid-body: the .tmp is
    // abandoned, the published bytes must not change.
    tuner::ShaderResult r2 = tinyResult();
    r2.byDevice.begin()->second.originalMeanNs = 12345.0;
    {
        fault::ScopedFaultPlan plan("shard.write:1:3");
        tuner::ExperimentEngine::saveShard(path, 1, r2);
    }
    EXPECT_EQ(readFile(path), before);
    EXPECT_TRUE(fs::exists(path + ".tmp")); // simulated mid-write crash

    // The torn .tmp must itself never load as a shard.
    tuner::ShaderResult out;
    EXPECT_FALSE(
        tuner::ExperimentEngine::loadShard(path + ".tmp", 1, out));
}

TEST(ShardIO, InjectedReadFaultIsACacheMiss)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    ScratchDir dir("readfault");
    const std::string path = dir.path() + "/tiny.bin";
    tuner::ExperimentEngine::saveShard(path, 1, tinyResult());
    fault::ScopedFaultPlan plan("shard.read:1:3");
    tuner::ShaderResult out;
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(path, 1, out));
}

TEST(ShardIO, CorruptionMatrixAlwaysLoadsFalse)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    ScratchDir dir("corrupt");
    const std::string path = dir.path() + "/tiny.bin";
    const std::string mutant = dir.path() + "/mutant.bin";
    tuner::ExperimentEngine::saveShard(path, 77, tinyResult());
    const std::string good = readFile(path);
    ASSERT_GT(good.size(), 16u);

    auto write_mutant = [&](const std::string &bytes) {
        std::ofstream f(mutant,
                        std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    };
    tuner::ShaderResult out;

    // Truncation at every byte boundary — header fields, string
    // lengths, counts, device blocks, everything.
    for (size_t len = 0; len < good.size(); ++len) {
        write_mutant(good.substr(0, len));
        EXPECT_FALSE(
            tuner::ExperimentEngine::loadShard(mutant, 77, out))
            << "truncated at " << len;
    }

    // Every single-byte flip must be caught (key, content hash, or
    // body-hash mismatch — fnv1a detects any one-byte change). Flips
    // inside the key bytes legitimately warn as stale shards; swallow
    // the noise.
    testing::internal::CaptureStderr();
    for (size_t pos = 0; pos < good.size(); ++pos) {
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ 0xff);
        write_mutant(bad);
        EXPECT_FALSE(
            tuner::ExperimentEngine::loadShard(mutant, 77, out))
            << "flipped byte " << pos;
    }
    testing::internal::GetCapturedStderr();

    // Random garbage of assorted sizes.
    Rng rng(2026);
    for (int i = 0; i < 64; ++i) {
        std::string junk(rng.below(512), '\0');
        for (char &c : junk)
            c = static_cast<char>(rng.below(256));
        write_mutant(junk);
        EXPECT_FALSE(
            tuner::ExperimentEngine::loadShard(mutant, 77, out))
            << "garbage iter " << i;
    }

    // The unmodified file still loads (the matrix isn't vacuous).
    EXPECT_TRUE(tuner::ExperimentEngine::loadShard(path, 77, out));
}

/** tinyResult() plus the schema-15 plan section: one producer-less
 * plan-only variant, referenced by an ordered-plan annotation. */
tuner::ShaderResult
planAnnotatedResult()
{
    tuner::ShaderResult r = tinyResult();
    tuner::Variant v2;
    v2.source = "void main() { /* plan-only text */ }";
    v2.sourceHash = fnv1a(v2.source);
    // No producers on purpose: no flag combination reaches this text,
    // only the plan annotation below keeps it structurally valid.
    r.exploration.variants.push_back(v2);
    for (auto &[dev, m] : r.byDevice)
        m.variantMeanNs.push_back(95.0 + m.originalMeanNs / 100.0);
    r.exploration.variantOfPlan = {{"adce>gvn", 2}, {"gvn>unroll", 0}};
    return r;
}

/** Write a shard file by hand: key, body hash, body — the saveShard
 * layout without the tmp-rename protocol, for crafting bodies whose
 * hash is *correct* so only structural validation can reject them. */
void
writeRawShard(const std::string &path, uint64_t key,
              const std::string &body)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    const uint64_t hash = fnv1a(body);
    f.write(reinterpret_cast<const char *>(&key), sizeof(key));
    f.write(reinterpret_cast<const char *>(&hash), sizeof(hash));
    f.write(body.data(), static_cast<std::streamsize>(body.size()));
}

TEST(ShardIO, StaleKeyMissesCleanlyAndSaysSo)
{
    // The shard key folds in the schema version, registry signature,
    // device set, and shader source — so a shard from any older schema
    // arrives here as a key mismatch. The contract: a clean cache miss
    // with a warning on the support/diag channel, never a crash and
    // never a silent wrong-key hit.
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    ScratchDir dir("stalekey");
    const std::string path = dir.path() + "/tiny.bin";
    tuner::ExperimentEngine::saveShard(path, 14, tinyResult());

    tuner::ShaderResult out;
    out.exploration.shaderName = "sentinel/untouched";
    testing::internal::CaptureStderr();
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(path, 15, out));
    const std::string warning = testing::internal::GetCapturedStderr();
    EXPECT_NE(warning.find("key mismatch"), std::string::npos)
        << warning;
    EXPECT_NE(warning.find("cache miss"), std::string::npos)
        << warning;
    // The miss must not leak a partial parse into the output.
    EXPECT_EQ(out.exploration.shaderName, "sentinel/untouched");

    // The matching key still loads, and quietly.
    testing::internal::CaptureStderr();
    EXPECT_TRUE(tuner::ExperimentEngine::loadShard(path, 14, out));
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(ShardIO, PlanAnnotatedShardRoundTripsAndSurvivesTheMatrix)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    ScratchDir dir("plancorrupt");
    const std::string path = dir.path() + "/plan.bin";
    const std::string mutant = dir.path() + "/mutant.bin";
    const tuner::ShaderResult r = planAnnotatedResult();
    tuner::ExperimentEngine::saveShard(path, 88, r);

    // Round trip: the plan section and the producer-less variant it
    // references come back byte-identical.
    tuner::ShaderResult out;
    ASSERT_TRUE(tuner::ExperimentEngine::loadShard(path, 88, out));
    EXPECT_EQ(tuner::serializeShardBody(out),
              tuner::serializeShardBody(r));
    ASSERT_EQ(out.exploration.variantOfPlan.size(), 2u);
    EXPECT_EQ(out.exploration.variantOfPlan.at("adce>gvn"), 2);
    EXPECT_TRUE(out.exploration.variants[2].producers.empty());

    // The plan section widens the byte surface; the corruption matrix
    // must hold over all of it. Truncation everywhere...
    const std::string good = readFile(path);
    ASSERT_GT(good.size(), 16u);
    auto write_mutant = [&](const std::string &bytes) {
        std::ofstream f(mutant, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    };
    for (size_t len = 0; len < good.size(); ++len) {
        write_mutant(good.substr(0, len));
        EXPECT_FALSE(
            tuner::ExperimentEngine::loadShard(mutant, 88, out))
            << "truncated at " << len;
    }
    // ...and every single-byte flip (key-byte flips warn as stale
    // shards; swallow the noise).
    testing::internal::CaptureStderr();
    for (size_t pos = 0; pos < good.size(); ++pos) {
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ 0xff);
        write_mutant(bad);
        EXPECT_FALSE(
            tuner::ExperimentEngine::loadShard(mutant, 88, out))
            << "flipped byte " << pos;
    }
    testing::internal::GetCapturedStderr();

    // Structural corruption the content hash cannot catch — bodies
    // re-hashed after tampering, so only the loader's validation
    // stands between them and a poisoned cache.
    // (a) A producer-less variant with the plan section stripped:
    // nothing references the orphan text.
    tuner::ShaderResult orphan = planAnnotatedResult();
    orphan.exploration.variantOfPlan.clear();
    writeRawShard(mutant, 88, tuner::serializeShardBody(orphan));
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(mutant, 88, out));
    // (b) A plan annotation pointing past the variant table.
    tuner::ShaderResult dangling = planAnnotatedResult();
    dangling.exploration.variantOfPlan["unroll>hoist"] = 99;
    writeRawShard(mutant, 88, tuner::serializeShardBody(dangling));
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(mutant, 88, out));
    // (c) Trailing garbage after a well-formed plan section.
    writeRawShard(mutant, 88,
                  tuner::serializeShardBody(r) + std::string(7, 'x'));
    EXPECT_FALSE(tuner::ExperimentEngine::loadShard(mutant, 88, out));

    // The pristine shard still loads after all of that.
    EXPECT_TRUE(tuner::ExperimentEngine::loadShard(path, 88, out));
}

// -------------------------------------------- campaign resilience

TEST(Campaign, QuarantinesUnrecoverableItemsAndCompletes)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    std::vector<corpus::CorpusShader> shaders;
    shaders.push_back(*corpus::findShader("simple/color_fill"));
    corpus::CorpusShader broken;
    broken.name = "broken/unparseable";
    broken.family = "broken";
    broken.source = "this is not GLSL at all {";
    shaders.push_back(broken);

    // A non-transient failure (real compile error) is quarantined
    // immediately — no retries wasted — and the rest of the campaign
    // completes untouched.
    tuner::ExperimentEngine engine(shaders, /*threads=*/2);
    const tuner::CampaignHealth &health = engine.health();
    EXPECT_FALSE(health.healthy());
    const size_t n_dev = gpu::allDevices().size();
    EXPECT_EQ(health.quarantined.size(), n_dev);
    for (const auto &q : health.quarantined) {
        EXPECT_EQ(q.shader, "broken/unparseable");
        EXPECT_EQ(q.attempts, 1);
    }
    EXPECT_FALSE(health.summary().empty());

    // The healthy shader is fully usable...
    const auto &ok = engine.result("simple/color_fill");
    EXPECT_TRUE(ok.quarantined.empty());
    EXPECT_EQ(ok.byDevice.size(), n_dev);
    // ... and the quarantined one is addressable, flagged, and throws
    // a quarantine-aware error instead of returning garbage.
    const auto &bad = engine.result("broken/unparseable");
    EXPECT_EQ(bad.quarantined.size(), n_dev);
    try {
        bad.bestSpeedup(gpu::DeviceId::Intel);
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range &e) {
        EXPECT_NE(std::string(e.what()).find("quarantined"),
                  std::string::npos);
    }
}

TEST(Campaign, WorkerFaultsQuarantineEveryItem)
{
    std::vector<corpus::CorpusShader> shaders;
    shaders.push_back(*corpus::findShader("simple/color_fill"));
    fault::ScopedFaultPlan plan("worker.item:1:1");
    tuner::ExperimentEngine engine(shaders, /*threads=*/1);
    const size_t n_dev = gpu::allDevices().size();
    EXPECT_EQ(engine.health().quarantined.size(), n_dev);
    EXPECT_EQ(engine.health().itemsCompleted, 0u);
    // Transient faults were retried before giving up.
    for (const auto &q : engine.health().quarantined)
        EXPECT_EQ(q.attempts, defaultRetryPolicy().maxAttempts);
}

TEST(Campaign, StrictModeRestoresFailFast)
{
    std::vector<corpus::CorpusShader> shaders;
    shaders.push_back(*corpus::findShader("simple/color_fill"));
    ScopedEnv strict("GSOPT_STRICT", "1");
    fault::ScopedFaultPlan plan("worker.item:1:1");
    EXPECT_THROW(tuner::ExperimentEngine(shaders, /*threads=*/1),
                 fault::TransientError);
}

// ------------------------------------------------- torture harness

TEST(Torture, FaultedCampaignBytesMatchFaultFreeRun)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    const auto shaders = miniCorpus();
    const auto &reference = referenceBodies();
    const int iters = tortureIters();

    for (int iter = 0; iter < iters; ++iter) {
        // Randomized-but-deterministic plan: rates drawn per
        // iteration, every site armed. Rates are kept under the
        // retry budget so transients never exhaust into quarantine
        // (quarantine has its own tests above); the assertion here is
        // the hard one — byte identity.
        Rng rng(0x70a7u + static_cast<uint64_t>(iter));
        auto rate = [&](double cap) {
            return rng.uniform() * cap;
        };
        char spec[256];
        std::snprintf(
            spec, sizeof(spec),
            "driver.compile:%.3f:%d,runtime.measure:%.3f:%d,"
            "worker.item:%.3f:%d,shard.write:%.3f:%d,"
            "shard.read:%.3f:%d",
            rate(0.25), 100 + iter, rate(0.25), 200 + iter,
            rate(0.08), 300 + iter, rate(0.9), 400 + iter,
            rate(0.9), 500 + iter);
        SCOPED_TRACE(std::string("plan: ") + spec);

        ScratchDir dir("torture_" + std::to_string(iter));
        {
            fault::ScopedFaultPlan plan(spec);
            gpu::clearDriverCache(); // compiles really run -> fault
            tuner::ExperimentEngine faulted(shaders, /*threads=*/1,
                                            dir.path());
            ASSERT_TRUE(faulted.health().healthy())
                << faulted.health().summary();
            const auto bodies = campaignBodies(faulted);
            ASSERT_EQ(bodies.size(), reference.size());
            for (size_t i = 0; i < bodies.size(); ++i)
                EXPECT_EQ(bodies[i], reference[i]) << shaders[i].name;
        }
        // Faults off: resume over whatever shards survived the torn
        // writes. Partial checkpoints must either be whole or absent,
        // never wrong — the resumed campaign reproduces the exact
        // fault-free bytes.
        tuner::ExperimentEngine resumed(shaders, /*threads=*/1,
                                        dir.path());
        EXPECT_TRUE(resumed.health().healthy());
        const auto bodies = campaignBodies(resumed);
        for (size_t i = 0; i < bodies.size(); ++i)
            EXPECT_EQ(bodies[i], reference[i]) << shaders[i].name;
    }
}

TEST(Torture, KilledCampaignResumesFromCompletedShards)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    const auto shaders = miniCorpus();
    const auto &reference = referenceBodies();
    const size_t n_dev = gpu::allDevices().size();
    ScratchDir dir("kill_resume");

    // "Kill" the campaign partway: strict mode turns the first
    // injected worker fault into a run-aborting throw, exactly like a
    // SIGKILL between two items. Single-threaded, the claim order is
    // items in order, so a seed firing mid-queue leaves a prefix of
    // shards checkpointed.
    {
        ScopedEnv strict("GSOPT_STRICT", "1");
        fault::ScopedFaultPlan plan("worker.item:0.08:20260807");
        EXPECT_THROW(tuner::ExperimentEngine(shaders, /*threads=*/1,
                                             dir.path()),
                     fault::TransientError);
    }
    size_t shards_on_disk = 0;
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        if (entry.path().extension() == ".bin")
            ++shards_on_disk;
    }
    // The kill must land mid-run for the test to mean anything.
    ASSERT_GT(shards_on_disk, 0u);
    ASSERT_LT(shards_on_disk, shaders.size());

    // Resume without faults: completed shards load, only the
    // remainder is explored/measured again.
    const auto &counters = tuner::exploreCounters();
    const uint64_t explored_before = counters.frontEndRuns.load();
    tuner::ExperimentEngine resumed(shaders, /*threads=*/1,
                                    dir.path());
    const uint64_t explored_after = counters.frontEndRuns.load();
    EXPECT_EQ(explored_after - explored_before,
              shaders.size() - shards_on_disk)
        << "resume must not re-explore checkpointed shards";
    EXPECT_TRUE(resumed.health().healthy());
    EXPECT_EQ(resumed.health().itemsCompleted,
              (shaders.size() - shards_on_disk) * n_dev)
        << "resume must not re-measure checkpointed shards";

    const auto bodies = campaignBodies(resumed);
    ASSERT_EQ(bodies.size(), reference.size());
    for (size_t i = 0; i < bodies.size(); ++i)
        EXPECT_EQ(bodies[i], reference[i]) << shaders[i].name;

    // All shards are now checkpointed; a further resume is pure load.
    const uint64_t explored_resume2 = counters.frontEndRuns.load();
    tuner::ExperimentEngine resumed2(shaders, /*threads=*/1,
                                     dir.path());
    EXPECT_EQ(counters.frontEndRuns.load(), explored_resume2);
    EXPECT_EQ(resumed2.health().itemsCompleted, 0u);
}

TEST(Campaign, OrphanSweepSkipsLiveTmpAndReapsDeadFiles)
{
    const fault::ScopedFaultPlan noAmbientFaults = quiesce();
    const auto shaders = miniCorpus();
    ScratchDir dir("sweep");
    tuner::ExperimentEngine first(shaders, /*threads=*/1, dir.path());

    // A live shard's in-flight .tmp (a checkpoint in progress on
    // another worker) must survive the sweep; dead keys — old
    // schemas, dropped shaders — are reaped, .tmp or not.
    std::string live_bin;
    for (const auto &entry : fs::directory_iterator(dir.path())) {
        if (entry.path().extension() == ".bin")
            live_bin = entry.path().string();
    }
    ASSERT_FALSE(live_bin.empty());
    const std::string live_tmp = live_bin + ".tmp";
    const std::string dead_bin = dir.path() + "/dead-0000.bin";
    const std::string dead_tmp = dead_bin + ".tmp";
    for (const std::string &p : {live_tmp, dead_bin, dead_tmp})
        std::ofstream(p, std::ios::binary) << "x";

    tuner::ExperimentEngine second(shaders, /*threads=*/1,
                                   dir.path());
    EXPECT_TRUE(fs::exists(live_bin));
    EXPECT_TRUE(fs::exists(live_tmp));
    EXPECT_FALSE(fs::exists(dead_bin));
    EXPECT_FALSE(fs::exists(dead_tmp));
}

} // namespace
} // namespace gsopt
