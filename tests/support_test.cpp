/**
 * @file
 * Unit tests for the support library: RNG determinism, statistics,
 * string utilities, and table rendering.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/diag.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace gsopt {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, LabelSeedingIsDeterministic)
{
    Rng a("ARM/shader/rep0"), b("ARM/shader/rep0"),
        c("ARM/shader/rep1");
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, GaussianMeanSigma)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 0.1);
    EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(Hash, Fnv1aStable)
{
    EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
    EXPECT_NE(fnv1a(""), fnv1a(" "));
}

TEST(Stats, SummaryBasics)
{
    Summary s = summarize({1, 2, 3, 4, 5});
    EXPECT_EQ(s.count, 5u);
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 5);
    EXPECT_DOUBLE_EQ(s.median, 3);
    EXPECT_DOUBLE_EQ(s.mean, 3);
    EXPECT_DOUBLE_EQ(s.q1, 2);
    EXPECT_DOUBLE_EQ(s.q3, 4);
}

TEST(Stats, SummaryEmpty)
{
    Summary s = summarize({});
    EXPECT_EQ(s.count, 0u);
    EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(Stats, PercentileInterpolates)
{
    EXPECT_DOUBLE_EQ(percentile({0, 10}, 50), 5.0);
    EXPECT_DOUBLE_EQ(percentile({0, 10}, 0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({0, 10}, 100), 10.0);
    EXPECT_DOUBLE_EQ(percentile({3}, 75), 3.0);
}

TEST(Stats, HistogramCountsAll)
{
    auto bins = histogram({0.1, 0.2, 0.9, 0.5, 0.55}, 10, 0.0, 1.0);
    ASSERT_EQ(bins.size(), 10u);
    size_t total = 0;
    for (const auto &b : bins)
        total += b.count;
    EXPECT_EQ(total, 5u);
    EXPECT_EQ(bins[1].count, 1u); // 0.1
    EXPECT_EQ(bins[9].count, 1u); // 0.9
}

TEST(Stats, HistogramClampsOutliers)
{
    auto bins = histogram({-5.0, 5.0}, 4, 0.0, 1.0);
    EXPECT_EQ(bins.front().count, 1u);
    EXPECT_EQ(bins.back().count, 1u);
}

TEST(Stats, GeomeanSpeedup)
{
    // +10% and -9.0909..% cancel out.
    EXPECT_NEAR(geomeanSpeedup({0.10, -1.0 / 11.0}), 0.0, 1e-12);
    EXPECT_NEAR(geomeanSpeedup({0.05, 0.05}), 0.05, 1e-12);
}

TEST(Strings, TrimAndSplit)
{
    EXPECT_EQ(trim("  a b  "), "a b");
    EXPECT_EQ(trim(""), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    auto ws = splitWhitespace("  foo\t bar\nbaz ");
    ASSERT_EQ(ws.size(), 3u);
    EXPECT_EQ(ws[2], "baz");
}

TEST(Strings, ReplaceAll)
{
    EXPECT_EQ(replaceAll("aaa", "a", "bb"), "bbbbbb");
    EXPECT_EQ(replaceAll("xyx", "y", ""), "xx");
}

TEST(Strings, FormatGlslFloatRoundTrips)
{
    for (double v : {0.0, 1.0, -2.5, 0.699301, 1e-8, 3.14159265358979,
                     1234567.0}) {
        std::string s = formatGlslFloat(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
        // Must re-lex as a float, not an int.
        EXPECT_TRUE(s.find('.') != std::string::npos ||
                    s.find('e') != std::string::npos)
            << s;
    }
}

TEST(Diag, CollectsAndThrows)
{
    DiagEngine diags;
    diags.warning({1, 2}, "w");
    EXPECT_FALSE(diags.hasErrors());
    diags.checkpoint(); // no throw
    diags.error({3, 4}, "bad");
    EXPECT_TRUE(diags.hasErrors());
    EXPECT_THROW(diags.checkpoint(), CompileError);
    EXPECT_NE(diags.str().find("3:4: error: bad"), std::string::npos);
}

TEST(Table, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", TextTable::num(1.5)});
    t.addRow({"longer_name", TextTable::pct(0.0425)});
    std::string s = t.str();
    EXPECT_NE(s.find("longer_name"), std::string::npos);
    EXPECT_NE(s.find("+4.25%"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
}

TEST(ParallelFor, SerialFirstErrorPropagatesWithPosition)
{
    std::atomic<int> executed{0};
    try {
        parallelFor(10, 1, [&](size_t i) {
            ++executed;
            if (i == 3)
                throw std::runtime_error("item 3 failed");
        });
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "item 3 failed");
    }
    // Serial claims in order: items 4..9 were abandoned.
    EXPECT_EQ(executed.load(), 4);
}

TEST(ParallelFor, ThreadedErrorAbandonsTheQueue)
{
    // Any worker's failure must stop the others from claiming more
    // work. With an early item throwing, far fewer than `items` run.
    constexpr size_t items = 10000;
    std::atomic<size_t> executed{0};
    EXPECT_THROW(parallelFor(items, 4,
                             [&](size_t i) {
                                 executed.fetch_add(1);
                                 if (i == 0)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    EXPECT_LT(executed.load(), items);
}

TEST(ParallelFor, CompletionHookRunsOncePerItem)
{
    for (unsigned threads : {1u, 4u}) {
        std::vector<std::atomic<int>> done(64);
        for (auto &d : done)
            d = 0;
        parallelFor(
            done.size(), threads, [](size_t) {},
            [&](size_t i) { done[i].fetch_add(1); });
        for (size_t i = 0; i < done.size(); ++i)
            EXPECT_EQ(done[i].load(), 1) << "item " << i;
    }
}

TEST(ParallelFor, CompletionHookSkippedForFailedItem)
{
    std::vector<int> done(8, 0);
    EXPECT_THROW(parallelFor(
                     done.size(), 1,
                     [&](size_t i) {
                         if (i == 5)
                             throw std::runtime_error("no hook for 5");
                     },
                     [&](size_t i) { done[i] = 1; }),
                 std::runtime_error);
    EXPECT_EQ(done[4], 1); // completed items got their hook...
    EXPECT_EQ(done[5], 0); // ... the failed one did not
    EXPECT_EQ(done[6], 0); // ... and the queue was abandoned
}

TEST(ParallelFor, HookExceptionIsAnItemFailure)
{
    std::atomic<int> executed{0};
    EXPECT_THROW(parallelFor(
                     8, 1, [&](size_t) { executed.fetch_add(1); },
                     [](size_t i) {
                         if (i == 2)
                             throw std::runtime_error("hook failed");
                     }),
                 std::runtime_error);
    // fn ran for 0,1,2; the failing hook abandoned the rest.
    EXPECT_EQ(executed.load(), 3);
}

} // namespace
} // namespace gsopt
