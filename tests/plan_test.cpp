/**
 * @file
 * Ordered-plan tests: PassPlan's canonical/string/parse algebra, the
 * forEachPlan walk delivering bit-identical modules to the linear
 * pipeline for canonical plans, the PlanApplier memo collapsing
 * permutations onto distinct (module, pass) edges, and PlanExplorer
 * layering on-demand plan exploration over an Exploration without
 * disturbing the flag-lattice contract.
 */
#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "corpus/corpus.h"
#include "emit/emit.h"
#include "emit/offline.h"
#include "passes/passes.h"
#include "passes/registry.h"
#include "tuner/explore.h"

namespace gsopt {
namespace {

using passes::PassPlan;
using passes::PassRegistry;

TEST(PassPlan, CanonicalOfListsSelectionInPipelineOrder)
{
    PassRegistry &reg = PassRegistry::instance();
    if (reg.count() != 8)
        GTEST_SKIP() << "string pins cover the built-in eight; "
                        "GSOPT_EXTRA_PASSES widens the registry";

    // The empty plan: mask 0, canonical, prints as "-".
    const PassPlan none = PassPlan::canonicalOf(0);
    EXPECT_TRUE(none.empty());
    EXPECT_TRUE(none.isCanonical());
    EXPECT_EQ(none.str(), "-");

    // Every mask round-trips through canonicalOf, and the member bits
    // come out in registry pipeline order, not bit order.
    for (uint64_t mask : {0x13ull, 0xffull, 0x80ull, 0x05ull}) {
        const PassPlan plan = PassPlan::canonicalOf(mask);
        EXPECT_EQ(plan.mask(), mask);
        EXPECT_TRUE(plan.isCanonical());
        EXPECT_TRUE(plan.valid());
        int prev_position = -1;
        for (int bit : plan.bits) {
            EXPECT_GT(reg.pass(bit).position, prev_position);
            prev_position = reg.pass(bit).position;
        }
    }

    // The full canonical plan spells the historical pipeline order.
    EXPECT_EQ(PassPlan::canonicalOf(0xff).str(),
              "unroll>hoist>coalesce>reassociate>fp_reassociate"
              ">div_to_mul>gvn>adce");
}

TEST(PassPlan, StrParseRoundTripAndRejection)
{
    // Round trip for canonical and non-canonical plans alike.
    for (const PassPlan &plan :
         {PassPlan::canonicalOf(0xff), PassPlan::canonicalOf(0),
          PassPlan{{passes::kPassBitGvn, passes::kPassBitUnroll}},
          PassPlan{{passes::kPassBitAdce}}}) {
        PassPlan parsed;
        ASSERT_TRUE(PassPlan::parse(plan.str(), parsed))
            << plan.str();
        EXPECT_EQ(parsed, plan) << plan.str();
    }

    // Whitespace around ids is tolerated.
    PassPlan spaced;
    ASSERT_TRUE(PassPlan::parse(" unroll > gvn ", spaced));
    EXPECT_EQ(spaced.str(), "unroll>gvn");

    // Unknown ids, duplicates, and empty segments are rejected and
    // leave the output untouched.
    PassPlan out{{passes::kPassBitAdce}};
    const PassPlan before = out;
    EXPECT_FALSE(PassPlan::parse("unroll>nosuchpass", out));
    EXPECT_FALSE(PassPlan::parse("unroll>unroll", out));
    EXPECT_FALSE(PassPlan::parse("unroll>>gvn", out));
    EXPECT_EQ(out, before);
}

TEST(PassPlan, ValidNamesTheOffendingBit)
{
    // Duplicate bit.
    std::string why;
    const PassPlan dup{{passes::kPassBitGvn, passes::kPassBitGvn}};
    EXPECT_FALSE(dup.valid(&why));
    EXPECT_NE(why.find("gvn"), std::string::npos) << why;

    // Unregistered bit (beyond the live registry).
    const int dead_bit =
        static_cast<int>(PassRegistry::instance().count());
    why.clear();
    EXPECT_FALSE(PassPlan{{dead_bit}}.valid(&why));
    EXPECT_FALSE(why.empty());

    // Ordering alone never invalidates: any permutation of
    // registered bits is a valid plan.
    const PassPlan reversed{
        {passes::kPassBitAdce, passes::kPassBitUnroll}};
    EXPECT_TRUE(reversed.valid());
}

TEST(PlanWalk, CanonicalPlansMatchLinearPipelineByteForByte)
{
    // forEachPlan over every canonical plan must reproduce
    // optimize() exactly — the flag lattice really is the
    // canonical-order special case of the plan space.
    if (PassRegistry::instance().count() != 8)
        GTEST_SKIP() << "step counts pinned to the 256-combo lattice; "
                        "GSOPT_EXTRA_PASSES widens it";
    const corpus::CorpusShader &shader =
        *corpus::findShader("toon/bands3");
    auto base = emit::compileToIr(shader.source, shader.defines);

    std::vector<PassPlan> plans;
    const uint64_t combos = PassRegistry::instance().comboCount();
    for (uint64_t mask = 0; mask < combos; ++mask)
        plans.push_back(PassPlan::canonicalOf(mask));

    std::map<uint64_t, std::string> plan_text;
    passes::FlagTreeStats stats;
    passes::forEachPlan(
        *base, plans,
        [&](const PassPlan &plan, const ir::Module &module, uint64_t) {
            plan_text[plan.mask()] = emit::emitGlsl(module);
        },
        &stats);
    ASSERT_EQ(plan_text.size(), combos);

    for (uint64_t mask = 0; mask < combos; ++mask) {
        auto linear = base->clone();
        passes::optimize(
            *linear, passes::OptFlags::fromMask(mask));
        EXPECT_EQ(emit::emitGlsl(*linear), plan_text.at(mask))
            << PassPlan::canonicalOf(mask).str();
    }

    // The memo must hold executed pass runs far below the walked
    // total: 256 canonical plans contain 8 * 128 = 1024 plan steps.
    EXPECT_EQ(stats.passRuns + stats.passMemoHits, 1024u);
    EXPECT_LT(stats.passRuns, 256u);
    EXPECT_GT(stats.passMemoHits, stats.passRuns);
}

TEST(PlanWalk, PermutationsShareDistinctEdgesThroughTheMemo)
{
    const corpus::CorpusShader &shader =
        *corpus::findShader("blur/weighted9");
    auto base = emit::compileToIr(shader.source, shader.defines);

    // All 6 orderings of {unroll, gvn, fp_reassociate}.
    const int u = passes::kPassBitUnroll;
    const int g = passes::kPassBitGvn;
    const int f = passes::kPassBitFpReassociate;
    std::vector<PassPlan> plans = {
        PassPlan{{u, g, f}}, PassPlan{{u, f, g}}, PassPlan{{g, u, f}},
        PassPlan{{g, f, u}}, PassPlan{{f, u, g}}, PassPlan{{f, g, u}},
    };

    size_t delivered = 0;
    passes::FlagTreeStats stats;
    passes::forEachPlan(
        *base, plans,
        [&](const PassPlan &, const ir::Module &, uint64_t) {
            ++delivered;
        },
        &stats);
    EXPECT_EQ(delivered, plans.size());

    // 6 plans x 3 steps = 18 apply edges walked. Each pass can open
    // at most one *distinct* edge per distinct incoming module, and
    // each of the three passes appears twice as a first step — so at
    // least 3 edges are memo hits even with zero convergence, and
    // every walked edge is accounted as exactly one of run/hit.
    EXPECT_EQ(stats.passRuns + stats.passMemoHits, 18u);
    EXPECT_GE(stats.passMemoHits, 3u);
    EXPECT_LT(stats.passRuns, 18u);
}

TEST(PlanExplorer, CanonicalPlansResolveWithoutPassWork)
{
    tuner::Exploration ex =
        tuner::exploreShader(*corpus::findShader("blur/weighted9"));
    const size_t unique_before = ex.uniqueCount();

    tuner::PlanExplorer planner(*corpus::findShader("blur/weighted9"),
                                ex);
    // Canonical plans are flag subsets: resolved from variantOfCombo,
    // no walk, no new variants, no plan annotation.
    const PassPlan canon = PassPlan::canonicalOf(0x13);
    EXPECT_EQ(planner.ensure(canon),
              ex.variantOf(tuner::FlagSet(0x13)));
    EXPECT_EQ(planner.plansWalked(), 0u);
    EXPECT_EQ(ex.uniqueCount(), unique_before);
    EXPECT_TRUE(ex.variantOfPlan.empty());
}

TEST(PlanExplorer, NonCanonicalPlansDedupAnnotateAndCache)
{
    const corpus::CorpusShader &shader =
        *corpus::findShader("simple/grayscale");
    tuner::Exploration ex = tuner::exploreShader(shader);
    const size_t unique_before = ex.uniqueCount();

    tuner::PlanExplorer planner(shader, ex);

    // adce>gvn is non-canonical (pipeline order is gvn before adce);
    // on grayscale both fire on nothing, so the walk converges to the
    // canonical {adce, gvn} text and dedups against it — a plan
    // annotation, not a new variant.
    const PassPlan plan{{passes::kPassBitAdce, passes::kPassBitGvn}};
    ASSERT_FALSE(plan.isCanonical());
    const int v = planner.ensure(plan);
    EXPECT_EQ(v, ex.variantOf(tuner::FlagSet(plan.mask())));
    EXPECT_EQ(ex.uniqueCount(), unique_before);
    EXPECT_EQ(planner.plansWalked(), 1u);
    ASSERT_EQ(ex.variantOfPlan.count(plan.str()), 1u);
    EXPECT_EQ(ex.variantOfPlan.at(plan.str()), v);

    // Exploration::variantOf(plan) now resolves it; the repeat
    // ensure is a cache hit (no second walk).
    EXPECT_EQ(ex.variantOf(plan), v);
    EXPECT_EQ(planner.ensure(plan), v);
    EXPECT_EQ(planner.plansWalked(), 1u);

    // Unknown plans still throw from the bare Exploration.
    const PassPlan unknown{
        {passes::kPassBitDivToMul, passes::kPassBitUnroll}};
    EXPECT_THROW(ex.variantOf(unknown), std::out_of_range);

    // Invalid plans are rejected up front.
    EXPECT_THROW(
        planner.ensure(PassPlan{
            {passes::kPassBitGvn, passes::kPassBitGvn}}),
        std::invalid_argument);
}

TEST(PlanExplorer, OrderingCanReachTextNoFlagSubsetProduces)
{
    // The mechanistic ordering win (N=11): licm *before* unroll
    // shrinks godrays/march64_spectral's over-budget loop body below
    // unroll's instruction budget, so the loop unrolls fully — in the
    // canonical order unroll runs first and declines. The resulting
    // text differs from every flag subset: a plan-only variant with
    // no producers, valid precisely because variantOfPlan references
    // it.
    passes::ScopedExtraPasses extras;
    const int licm = PassRegistry::instance().bitOf("licm");
    ASSERT_GE(licm, 0);

    const corpus::CorpusShader &shader =
        *corpus::findShader("godrays/march64_spectral");
    tuner::Exploration ex = tuner::exploreShader(shader);
    const size_t unique_before = ex.uniqueCount();

    tuner::PlanExplorer planner(shader, ex);
    const PassPlan plan{{licm, passes::kPassBitUnroll}};
    ASSERT_FALSE(plan.isCanonical());
    const int v = planner.ensure(plan);
    ASSERT_GE(v, 0);
    ASSERT_LT(static_cast<size_t>(v), ex.uniqueCount());
    EXPECT_EQ(ex.variantOfPlan.at(plan.str()), v);

    // A genuinely new text, reachable by no flag subset: the variant
    // was appended producerless, and it differs from the canonical
    // order of the same member set (where the loop stays rolled).
    ASSERT_GE(static_cast<size_t>(v), unique_before);
    EXPECT_TRUE(ex.variants[v].producers.empty());
    EXPECT_NE(
        ex.variants[v].source,
        ex.variants[ex.variantOf(tuner::FlagSet(plan.mask()))].source);
}

} // namespace
} // namespace gsopt
