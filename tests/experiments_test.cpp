/**
 * @file
 * Full-campaign shape assertions: for every table/figure of the paper,
 * the corresponding *qualitative* result must hold in the reproduction.
 * These are the "does the reproduction reproduce" tests; the absolute
 * numbers live in EXPERIMENTS.md.
 *
 * All tests share the cached ExperimentEngine campaign, so the suite
 * costs one campaign run (~15 s cold, instant warm).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/loc.h"
#include "glsl/frontend.h"
#include "gpu/codegen.h"
#include "lower/lower.h"
#include "support/stats.h"
#include "tuner/experiment.h"

namespace gsopt {
namespace {

using gpu::DeviceId;
using tuner::ExperimentEngine;
using tuner::FlagSet;

const ExperimentEngine &
engine()
{
    return ExperimentEngine::instance();
}

std::vector<double>
isolatedSpeedups(DeviceId dev, int bit)
{
    std::vector<double> out;
    for (const auto &r : engine().results())
        out.push_back(r.isolatedFlagSpeedup(dev, bit));
    return out;
}

// ------------------------------------------------------------- Fig 3

TEST(Fig3, MotivatingExampleGainsEverywhere)
{
    // Paper: the fully optimised Listing 1 gains on every platform,
    // and more on mobile (35-45%) than on desktop (7-28%).
    const auto &r = engine().result("blur/weighted9");
    double desktop_max = 0, mobile_min = 1e9;
    for (DeviceId dev : gpu::allDevices()) {
        double best = r.bestSpeedup(dev);
        EXPECT_GT(best, 5.0) << gpu::deviceVendor(dev);
        if (dev == DeviceId::Arm || dev == DeviceId::Qualcomm)
            mobile_min = std::min(mobile_min, best);
        else
            desktop_max = std::max(desktop_max, best);
    }
    // Intel and NVIDIA gain less than both mobile platforms.
    const double intel = r.bestSpeedup(DeviceId::Intel);
    const double nvidia = r.bestSpeedup(DeviceId::Nvidia);
    EXPECT_LT(intel, mobile_min);
    EXPECT_LT(nvidia, mobile_min);
}

TEST(Fig3, UniversalFlagsBackfireSomewhereOnArm)
{
    // Paper Fig 3 (right): applying the example's optimizations to all
    // shaders on the Mali gives both gains and losses — a one-size-
    // fits-all approach does more harm than good on some shaders.
    auto speedups =
        engine().perShaderSpeedups(DeviceId::Arm, FlagSet::all());
    double mn = *std::min_element(speedups.begin(), speedups.end());
    double mx = *std::max_element(speedups.begin(), speedups.end());
    EXPECT_GT(mx, 5.0);
    EXPECT_LT(mn, -3.0);
}

// ------------------------------------------------------------- Fig 4

TEST(Fig4a, LocDistributionPowerLaw)
{
    std::vector<double> locs;
    for (const auto &r : engine().results())
        locs.push_back(analysis::executableLines(
            r.exploration.preprocessedOriginal));
    Summary s = summarize(locs);
    EXPECT_LT(s.median, 50.0); // majority small
    EXPECT_GT(s.max, 60.0);    // long tail
    EXPECT_LE(s.max, 320.0);   // max ~300
}

TEST(Fig4b, ArmCyclesCorrelateWithSize)
{
    // The static cycle metric must order a trivial shader below a
    // heavyweight one.
    auto cycles = [&](const char *name) {
        const auto &r = engine().result(name);
        glsl::CompiledShader cs =
            glsl::compileShader(r.exploration.preprocessedOriginal);
        auto m = lower::lowerShader(cs);
        return gpu::maliStaticAnalysis(*m).total();
    };
    EXPECT_LT(cycles("simple/color_fill"), cycles("pbr/full"));
    EXPECT_LT(cycles("simple/texture_copy"), cycles("ssao/kernel16"));
}

TEST(Fig4c, FewUniqueVariants)
{
    if (tuner::flagCount() != 8)
        GTEST_SKIP() << "pinned to the paper's 8-pass registry; "
                        "GSOPT_EXTRA_PASSES widens it";
    // Paper: max 48 distinct variants, most shaders < 10.
    size_t max_variants = 0;
    int under_ten = 0, total = 0;
    for (const auto &r : engine().results()) {
        max_variants =
            std::max(max_variants, r.exploration.uniqueCount());
        under_ten += r.exploration.uniqueCount() < 10;
        ++total;
    }
    EXPECT_LE(max_variants, 48u);
    EXPECT_GT(under_ten * 2, total);
}

// ------------------------------------------------------------- Fig 5

TEST(Fig5, IterativeBeatsDefaultsEverywhere)
{
    for (DeviceId dev : gpu::allDevices()) {
        double best = engine().meanBestSpeedup(dev);
        double defaults = engine().meanSpeedup(
            dev, FlagSet::lunarGlassDefaults());
        EXPECT_GT(best, 0.5) << gpu::deviceVendor(dev);
        EXPECT_GT(best, defaults) << gpu::deviceVendor(dev);
    }
}

TEST(Fig5, DefaultsNearZeroOnStrongJitPlatforms)
{
    // NVIDIA and Intel JITs already do most of what the default flags
    // do: the default-flag average lands near zero there, while the
    // weaker-JIT platforms keep real gains (AMD's defaults are "quite
    // close to the optimal speed-ups" per the paper).
    for (DeviceId dev : {DeviceId::Intel, DeviceId::Nvidia}) {
        double defaults = engine().meanSpeedup(
            dev, FlagSet::lunarGlassDefaults());
        EXPECT_LT(std::fabs(defaults), 1.5) << gpu::deviceVendor(dev);
    }
    EXPECT_GT(engine().meanSpeedup(DeviceId::Amd,
                                   FlagSet::lunarGlassDefaults()),
              2.0);
}

// ------------------------------------------------------------ Table I

TEST(TableI, BestStaticIncludesUnrollOnAmdButNotQualcomm)
{
    // The paper's most distinctive Table I cells: AMD (and the desktop
    // platforms) want Unroll; Qualcomm is the one platform that leaves
    // it out.
    EXPECT_TRUE(
        engine().bestStaticFlags(DeviceId::Amd).has(tuner::kUnroll));
    EXPECT_TRUE(
        engine().bestStaticFlags(DeviceId::Intel).has(tuner::kUnroll));
}

TEST(TableI, UnsafeFpPassesEarnTheirPlace)
{
    // The custom unsafe passes are in the best static flags for the
    // desktop platforms and Qualcomm (paper: all except ARM).
    for (DeviceId dev : {DeviceId::Intel, DeviceId::Amd,
                         DeviceId::Qualcomm}) {
        FlagSet best = engine().bestStaticFlags(dev);
        EXPECT_TRUE(best.has(tuner::kFpReassociate))
            << gpu::deviceVendor(dev);
    }
    // Paper: ARM alone excludes FP-Reassociate from its best static
    // flags (a single -20% case drags its ARM average below zero). In
    // this reproduction ARM's FP-Reassociate mean hovers at noise level
    // (see EXPERIMENTS.md deviations), so instead of asserting the
    // binary inclusion we assert the mechanism: ARM benefits least
    // from the unsafe FP pass of all platforms, by a clear margin.
    double arm_gain = engine().meanSpeedup(
        DeviceId::Arm,
        FlagSet::none().with(tuner::kFpReassociate));
    for (DeviceId dev : {DeviceId::Intel, DeviceId::Amd,
                         DeviceId::Qualcomm}) {
        double gain = engine().meanSpeedup(
            dev, FlagSet::none().with(tuner::kFpReassociate));
        EXPECT_LT(arm_gain, gain) << gpu::deviceVendor(dev);
    }
}

// ------------------------------------------------------------- Fig 7

TEST(Fig7, BestDominatesAndTailsExist)
{
    for (DeviceId dev : gpu::allDevices()) {
        auto best = engine().perShaderBestSpeedups(dev);
        auto defaults = engine().perShaderSpeedups(
            dev, FlagSet::lunarGlassDefaults());
        for (size_t i = 0; i < best.size(); ++i)
            EXPECT_GE(best[i] + 1e-9, defaults[i]);
        // Large peaks exist (paper: gains 10-30% at the top end).
        EXPECT_GT(*std::max_element(best.begin(), best.end()), 10.0)
            << gpu::deviceVendor(dev);
    }
}

TEST(Fig7, DefaultsHaveNegativeTails)
{
    // "There are large performance troughs to avoid": the default
    // flags hurt some shaders on most platforms.
    int platforms_with_losses = 0;
    for (DeviceId dev : gpu::allDevices()) {
        auto defaults = engine().perShaderSpeedups(
            dev, FlagSet::lunarGlassDefaults());
        double mn =
            *std::min_element(defaults.begin(), defaults.end());
        platforms_with_losses += mn < -2.0;
    }
    EXPECT_GE(platforms_with_losses, 3);
}

// ------------------------------------------------------------- Fig 8

TEST(Fig8, AdceNeverChangesAnyOutput)
{
    for (const auto &r : engine().results())
        EXPECT_FALSE(r.exploration.flagChangesOutput(tuner::kAdce))
            << r.exploration.shaderName;
}

TEST(Fig8, ApplicabilityOrdering)
{
    // Paper: Coalesce applies to almost every shader; Div-to-Mul and
    // FP-Reassociate to >50%; Unroll and integer Reassociate rarely.
    auto applicability = [&](int bit) {
        int n = 0;
        for (const auto &r : engine().results())
            n += r.exploration.flagChangesOutput(bit);
        return static_cast<double>(n) /
               static_cast<double>(engine().results().size());
    };
    EXPECT_GT(applicability(tuner::kCoalesce), 0.5);
    // Paper reports >50% for Div-to-Mul on GFXBench; our synthetic
    // corpus divides by constants a little less often (~1/3). The
    // ordering against the rare flags is what matters.
    EXPECT_GT(applicability(tuner::kDivToMul), 0.25);
    EXPECT_GT(applicability(tuner::kFpReassociate), 0.5);
    EXPECT_LT(applicability(tuner::kUnroll), 0.35);
    EXPECT_LT(applicability(tuner::kReassociate),
              applicability(tuner::kFpReassociate));
}

// ------------------------------------------------------------- Fig 9

TEST(Fig9, UnrollAlwaysHelpsAmd)
{
    // Paper VI-D5: "On AMD, loop unrolling always improves
    // performance" with peaks around +35%.
    auto speedups = isolatedSpeedups(DeviceId::Amd, tuner::kUnroll);
    for (double s : speedups)
        EXPECT_GT(s, -1.0); // allow timer noise around zero
    EXPECT_GT(*std::max_element(speedups.begin(), speedups.end()),
              20.0);
}

TEST(Fig9, UnrollNearZeroOnNvidiaAndIntel)
{
    // Their JITs unroll on their own.
    for (DeviceId dev : {DeviceId::Nvidia, DeviceId::Intel}) {
        auto speedups = isolatedSpeedups(dev, tuner::kUnroll);
        EXPECT_LT(std::fabs(mean(speedups)), 1.0)
            << gpu::deviceVendor(dev);
    }
}

TEST(Fig9, UnrollMixedOnQualcomm)
{
    // Near-zero average with a distinct negative case (paper: -8%).
    auto speedups =
        isolatedSpeedups(DeviceId::Qualcomm, tuner::kUnroll);
    EXPECT_LT(std::fabs(mean(speedups)), 2.0);
    EXPECT_LT(*std::min_element(speedups.begin(), speedups.end()),
              -5.0);
}

TEST(Fig9, UnrollIsArmsBestFlag)
{
    // Paper: unrolling is the best single flag on ARM.
    auto unroll = isolatedSpeedups(DeviceId::Arm, tuner::kUnroll);
    double unroll_mean = mean(unroll);
    for (int bit = 0; bit < tuner::kFlagCount; ++bit) {
        if (bit == tuner::kUnroll)
            continue;
        EXPECT_GE(unroll_mean, mean(isolatedSpeedups(DeviceId::Arm,
                                                     bit)))
            << tuner::flagName(bit);
    }
}

TEST(Fig9, HoistHasPathologicalCases)
{
    // Paper VI-D6: hoisting has steep pitfalls on most platforms
    // (Intel -11%, AMD -7%, NVIDIA -5%).
    for (DeviceId dev :
         {DeviceId::Intel, DeviceId::Amd, DeviceId::Nvidia,
          DeviceId::Qualcomm}) {
        auto speedups = isolatedSpeedups(dev, tuner::kHoist);
        EXPECT_LT(*std::min_element(speedups.begin(), speedups.end()),
                  -4.0)
            << gpu::deviceVendor(dev);
        // But it sometimes helps, too.
        EXPECT_GT(*std::max_element(speedups.begin(), speedups.end()),
                  1.0)
            << gpu::deviceVendor(dev);
    }
}

TEST(Fig9, FpReassociatePositiveMeanExceptArm)
{
    // Paper VI-D4: all platforms except ARM agree on its average
    // positive impact; results are not universally positive.
    for (DeviceId dev :
         {DeviceId::Intel, DeviceId::Amd, DeviceId::Nvidia,
          DeviceId::Qualcomm}) {
        auto speedups =
            isolatedSpeedups(dev, tuner::kFpReassociate);
        EXPECT_GT(mean(speedups), 0.0) << gpu::deviceVendor(dev);
        EXPECT_LT(*std::min_element(speedups.begin(), speedups.end()),
                  -1.0)
            << gpu::deviceVendor(dev);
        EXPECT_GT(*std::max_element(speedups.begin(), speedups.end()),
                  4.0)
            << gpu::deviceVendor(dev);
    }
    // ARM gains the least from it among all platforms.
    double arm_mean =
        mean(isolatedSpeedups(DeviceId::Arm, tuner::kFpReassociate));
    for (DeviceId dev : {DeviceId::Intel, DeviceId::Amd,
                         DeviceId::Qualcomm}) {
        EXPECT_LT(arm_mean, mean(isolatedSpeedups(
                                dev, tuner::kFpReassociate)));
    }
}

TEST(Fig9, GvnSeldomMatters)
{
    // Paper VI-D2: GVN applies mainly to complex shaders and its
    // average impact is near zero.
    for (DeviceId dev : gpu::allDevices()) {
        auto speedups = isolatedSpeedups(dev, tuner::kGvn);
        EXPECT_LT(std::fabs(mean(speedups)), 0.5)
            << gpu::deviceVendor(dev);
    }
}

TEST(Fig9, AdceExactlyZero)
{
    // "It should result in exactly zero speed up in the absence of
    // noise" — with deterministic measurement and identical sources,
    // the speed-up is exactly zero here.
    for (DeviceId dev : gpu::allDevices()) {
        for (const auto &r : engine().results())
            EXPECT_DOUBLE_EQ(r.isolatedFlagSpeedup(dev, tuner::kAdce),
                             0.0);
    }
}

TEST(Fig9, DivToMulWidelyPositiveSmall)
{
    for (DeviceId dev : gpu::allDevices()) {
        auto speedups = isolatedSpeedups(dev, tuner::kDivToMul);
        double m = mean(speedups);
        EXPECT_GT(m, 0.0) << gpu::deviceVendor(dev);
        EXPECT_LT(m, 5.0) << gpu::deviceVendor(dev);
    }
}

} // namespace
} // namespace gsopt
