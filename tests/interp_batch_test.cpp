/**
 * @file
 * Batched SIMT interpreter tests: per-lane bit-identity against the
 * scalar engines under heavy divergence (nested ifs, discards at
 * different mask depths, non-uniform loop trip counts), the per-lane
 * executed-instruction semantics, width rounding and fallback paths,
 * the tile entry point, and the cached default-environment regression.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "emit/offline.h"
#include "glsl/frontend.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "ir/interp_batch.h"
#include "lower/lower.h"
#include "runtime/framework.h"

namespace gsopt {
namespace {

/** Straight-line shader: no divergence possible. */
const char *kStraightLine = R"(#version 450
in vec2 uv;
in float tone;
uniform float gain;
uniform sampler2D tex;
out vec4 fragColor;
void main() {
    vec4 t = texture(tex, uv);
    float s = sin(uv.x * 6.0) * 0.5 + cos(uv.y * 3.0) * 0.25;
    vec3 mixed = mix(t.rgb, vec3(s, tone, gain), 0.375);
    fragColor = vec4(normalize(mixed + vec3(0.01)), length(mixed));
}
)";

/** Divergence torture: a generic loop whose trip count differs per
 * lane, nested ifs inside the loop, and discards at two different
 * nesting depths after it. Every mask-stack unwind path is exercised
 * when lanes are spread across uv/tone. */
const char *kTorture = R"(#version 450
in vec2 uv;
in float tone;
uniform sampler2D tex;
out vec4 fragColor;
void main() {
    float acc = 0.0;
    int n = int(uv.x * 7.0);
    for (int i = 0; i < n; i++) {
        acc += float(i) * 0.25 + texture(tex, vec2(uv.x, acc)).y;
        if (acc > 1.5) {
            acc -= 0.5;
            if (uv.y > 0.6) {
                acc += 0.125;
            }
        }
    }
    if (uv.y < 0.15) {
        discard;
    }
    if (acc > 2.0) {
        if (tone > 0.5) {
            discard;
        }
        acc *= 0.5;
    }
    fragColor = vec4(acc, uv.x, uv.y, 1.0);
}
)";

/** A batch whose lanes spread over the torture shader's branch space:
 * trip counts 0..6, both discard sites hit and missed. */
ir::BatchEnv
spreadEnv(size_t width)
{
    ir::BatchEnv env;
    env.width = width;
    for (size_t l = 0; l < width; ++l) {
        const double f =
            static_cast<double>(l) /
            static_cast<double>(width > 1 ? width - 1 : 1);
        env.setLaneInput("uv", l, {0.05 + 0.9 * f, 1.0 - f});
        env.setLaneInput("tone", l, {0.2 + 0.7 * f});
    }
    env.uniforms["gain"] = {1.25};
    return env;
}

void
expectLaneIdentical(const ir::BatchResult &batch,
                    const ir::Module &module, const ir::BatchEnv &env)
{
    for (size_t l = 0; l < env.width; ++l) {
        SCOPED_TRACE("lane " + std::to_string(l));
        const ir::InterpResult want =
            ir::interpret(module, env.laneEnv(l));
        const ir::InterpResult got = batch.laneResult(l);
        ASSERT_EQ(got.discarded, want.discarded);
        ASSERT_EQ(got.executedInstructions, want.executedInstructions);
        ASSERT_EQ(got.outputs.size(), want.outputs.size());
        for (const auto &[name, lanes] : want.outputs) {
            const auto &g = got.outputs.at(name);
            ASSERT_EQ(g.size(), lanes.size()) << name;
            for (size_t c = 0; c < lanes.size(); ++c) {
                // EXPECT_EQ on doubles is exact: bit-identity, not
                // tolerance.
                EXPECT_EQ(g[c], lanes[c])
                    << name << "[" << c << "]";
            }
        }
    }
}

TEST(InterpBatch, StraightLineMatchesScalarPerLane)
{
    auto module = emit::compileToIr(kStraightLine);
    const ir::BatchEnv env = spreadEnv(8);
    ir::BatchRunner runner(*module, 8);
    EXPECT_TRUE(runner.batched());
    expectLaneIdentical(runner.run(env), *module, env);
}

TEST(InterpBatch, DivergenceTortureMatchesScalarPerLane)
{
    auto module = emit::compileToIr(kTorture);
    const ir::BatchEnv env = spreadEnv(16);
    const ir::BatchResult batch = ir::interpretBatch(*module, env);

    // The spread must actually diverge: some lanes discarded, some
    // not, and at least three distinct dynamic instruction counts
    // (different trip counts / branch paths), or the torture test
    // tests nothing.
    size_t discards = 0;
    std::set<size_t> counts;
    for (size_t l = 0; l < env.width; ++l) {
        discards += batch.discarded[l];
        counts.insert(batch.laneExecuted[l]);
    }
    EXPECT_GT(discards, 0u);
    EXPECT_LT(discards, env.width);
    EXPECT_GE(counts.size(), 3u);

    expectLaneIdentical(batch, *module, env);
}

TEST(InterpBatch, ExecutedCountIsPerLaneSummed)
{
    // Satellite: on a divergence-free shader every lane executes the
    // identical instruction stream, so the batch total is exactly
    // width x the scalar count.
    auto module = emit::compileToIr(kStraightLine);
    const ir::BatchEnv env = spreadEnv(8);
    const ir::BatchResult batch = ir::interpretBatch(*module, env);

    const size_t scalar =
        ir::interpret(*module, env.laneEnv(0)).executedInstructions;
    EXPECT_EQ(batch.executedInstructions, 8 * scalar);
    size_t sum = 0;
    for (size_t l = 0; l < 8; ++l) {
        EXPECT_EQ(batch.laneExecuted[l], scalar);
        sum += batch.laneExecuted[l];
    }
    EXPECT_EQ(batch.executedInstructions, sum);
}

TEST(InterpBatch, MaskedLanesDoNotCount)
{
    // A lane that discards early stops counting exactly where the
    // scalar engine stops executing; live lanes are unaffected.
    auto module = emit::compileToIr(R"(#version 450
in float x;
out vec4 c;
void main() {
    if (x < 0.5) {
        discard;
    }
    float a = sin(x) + cos(x) + exp(x) + sqrt(x);
    c = vec4(a, a * 0.5, a * 0.25, 1.0);
}
)");
    ir::BatchEnv env;
    env.width = 4;
    env.setLaneInput("x", 0, {0.1}); // discards
    env.setLaneInput("x", 1, {0.9});
    env.setLaneInput("x", 2, {0.2}); // discards
    env.setLaneInput("x", 3, {0.7});
    const ir::BatchResult batch = ir::interpretBatch(*module, env);

    EXPECT_TRUE(batch.discarded[0]);
    EXPECT_FALSE(batch.discarded[1]);
    EXPECT_TRUE(batch.discarded[2]);
    EXPECT_FALSE(batch.discarded[3]);
    EXPECT_LT(batch.laneExecuted[0], batch.laneExecuted[1]);
    EXPECT_EQ(batch.laneExecuted[0], batch.laneExecuted[2]);
    EXPECT_EQ(batch.laneExecuted[1], batch.laneExecuted[3]);
    EXPECT_EQ(batch.executedInstructions,
              batch.laneExecuted[0] + batch.laneExecuted[1] +
                  batch.laneExecuted[2] + batch.laneExecuted[3]);
    expectLaneIdentical(batch, *module, env);
}

TEST(InterpBatch, EverySupportedWidthMatches)
{
    auto module = emit::compileToIr(kTorture);
    for (size_t w : {1u, 2u, 3u, 4u, 5u, 8u, 11u, 16u}) {
        SCOPED_TRACE("width " + std::to_string(w));
        const ir::BatchEnv env = spreadEnv(w);
        expectLaneIdentical(ir::interpretBatch(*module, env), *module,
                            env);
    }
}

TEST(InterpBatch, NonDenseIdsFallBackToScalar)
{
    // Hand-assembled module whose ids are deliberately not dense: the
    // runner must report fallback and still match the scalar engine.
    ir::Module m;
    ir::Var *in = m.newVar("x", glsl::Type::floatTy(),
                           ir::VarKind::Input);
    ir::Var *out = m.newVar("o", glsl::Type::floatTy(),
                            ir::VarKind::Output);
    ir::IrBuilder b(m);
    ir::Instr *v = b.load(in);
    b.store(out, b.binary(ir::Opcode::Mul, v, b.constFloat(3.0)));
    v->id += 100; // break density

    ir::BatchRunner runner(m, 4);
    EXPECT_FALSE(runner.batched());
    ir::BatchEnv env;
    env.width = 4;
    for (size_t l = 0; l < 4; ++l)
        env.setLaneInput("x", l, {0.25 * static_cast<double>(l + 1)});
    expectLaneIdentical(runner.run(env), m, env);
}

TEST(InterpBatch, BroadcastAndLaneEnvRoundTrip)
{
    ir::InterpEnv scalar;
    scalar.inputs["uv"] = {0.25, 0.75};
    scalar.uniforms["gain"] = {2.0};
    scalar.maxLoopIterations = 99;

    ir::BatchEnv env = ir::BatchEnv::broadcast(scalar, 8);
    EXPECT_EQ(env.width, 8u);
    EXPECT_EQ(env.maxLoopIterations, 99);
    for (size_t l = 0; l < 8; ++l) {
        const ir::InterpEnv lane = env.laneEnv(l);
        EXPECT_EQ(lane.inputs.at("uv"), scalar.inputs.at("uv"));
        EXPECT_EQ(lane.uniforms.at("gain"),
                  scalar.uniforms.at("gain"));
        EXPECT_EQ(lane.maxLoopIterations, 99);
    }
    env.setLaneInput("uv", 3, {0.5, 0.5});
    EXPECT_EQ(env.laneEnv(3).inputs.at("uv"),
              (ir::LaneVector{0.5, 0.5}));
    EXPECT_EQ(env.laneEnv(2).inputs.at("uv"),
              (ir::LaneVector{0.25, 0.75}));
    // Lane/component mismatches are rejected, not silently resized.
    EXPECT_THROW(env.setLaneInput("uv", 1, {1.0}),
                 std::invalid_argument);
    EXPECT_THROW(env.setLaneInput("uv", 8, {1.0, 1.0}),
                 std::invalid_argument);
}

TEST(InterpBatch, RunnerIsReusableAcrossBatches)
{
    // The tile paths call run() thousands of times on one runner; the
    // register file must come out of each run without state leaking
    // into the next (epoch bump, not wholesale clearing).
    auto module = emit::compileToIr(kTorture);
    ir::BatchRunner runner(*module, 8);
    for (int round = 0; round < 5; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        ir::BatchEnv env = spreadEnv(8);
        // Shift the spread each round so stale registers would show.
        for (size_t l = 0; l < 8; ++l) {
            const double f = static_cast<double>(
                                 (l + static_cast<size_t>(round)) % 8) /
                             7.0;
            env.setLaneInput("uv", l, {0.05 + 0.9 * f, 1.0 - f});
        }
        expectLaneIdentical(runner.run(env), *module, env);
    }
}

TEST(InterpBatch, TileBatchedMatchesScalarTile)
{
    glsl::CompiledShader cs = glsl::compileShader(kTorture, {});
    auto module = lower::lowerShader(cs);

    runtime::TileOptions scalarOpts;
    scalarOpts.width = 12;
    scalarOpts.height = 9;
    scalarOpts.batchWidth = 0; // scalar reference path
    const runtime::TileResult want =
        runtime::interpretTile(*module, cs.interface, scalarOpts);

    for (size_t w : {1u, 8u, 16u}) {
        SCOPED_TRACE("batchWidth " + std::to_string(w));
        runtime::TileOptions opts = scalarOpts;
        opts.batchWidth = w;
        const runtime::TileResult got =
            runtime::interpretTile(*module, cs.interface, opts);
        EXPECT_EQ(got.fragments, want.fragments);
        EXPECT_EQ(got.discardedFragments, want.discardedFragments);
        EXPECT_EQ(got.executedInstructions,
                  want.executedInstructions);
        EXPECT_EQ(got.allFinite, want.allFinite);
        ASSERT_EQ(got.outputSums.size(), want.outputSums.size());
        for (const auto &[name, sums] : want.outputSums) {
            const auto &g = got.outputSums.at(name);
            ASSERT_EQ(g.size(), sums.size()) << name;
            for (size_t c = 0; c < sums.size(); ++c)
                EXPECT_EQ(g[c], sums[c]) << name << "[" << c << "]";
        }
    }
    EXPECT_EQ(want.fragments, 12u * 9u);
    EXPECT_GT(want.discardedFragments, 0u);
    EXPECT_TRUE(want.allFinite);
}

TEST(InterpBatch, DefaultEnvironmentCachedIsStableAndDeterministic)
{
    // Satellite regression: the cached environment is built once per
    // interface signature, returns a stable reference, and matches a
    // fresh defaultEnvironment() build exactly on every call.
    glsl::CompiledShader cs = glsl::compileShader(kStraightLine, {});
    const ir::InterpEnv &a =
        runtime::defaultEnvironmentCached(cs.interface);
    const ir::InterpEnv &b =
        runtime::defaultEnvironmentCached(cs.interface);
    EXPECT_EQ(&a, &b) << "same interface must hit the cache";

    const ir::InterpEnv fresh =
        runtime::defaultEnvironment(cs.interface);
    EXPECT_EQ(a.inputs, fresh.inputs);
    EXPECT_EQ(a.uniforms, fresh.uniforms);

    // A second compile of the same source produces an equal (not
    // identical) interface object; the signature still hits the cache.
    glsl::CompiledShader cs2 = glsl::compileShader(kStraightLine, {});
    EXPECT_EQ(&runtime::defaultEnvironmentCached(cs2.interface), &a);

    // Callers perturb copies; the cache itself must stay pristine.
    ir::InterpEnv copy = a;
    copy.inputs["uv"] = {9.0, 9.0};
    EXPECT_EQ(runtime::defaultEnvironmentCached(cs.interface)
                  .inputs.at("uv"),
              fresh.inputs.at("uv"));
}

} // namespace
} // namespace gsopt
