/**
 * @file
 * Tests for the tuner: flag sets, exhaustive exploration with dedup,
 * and the experiment engine analyses (on a reduced corpus to stay
 * fast; the full-campaign shape checks live in experiments_test.cpp).
 */
#include <gtest/gtest.h>

#include "corpus/corpus.h"
#include "tuner/experiment.h"
#include "tuner/explore.h"
#include "tuner/flags.h"

namespace gsopt::tuner {
namespace {

TEST(FlagSet, RoundTripsOptFlags)
{
    for (uint64_t bits = 0; bits < 256; ++bits) {
        FlagSet f(bits);
        EXPECT_EQ(FlagSet::fromOptFlags(f.toOptFlags()).bits, f.bits);
    }
}

TEST(FlagSet, DefaultsMatchPaper)
{
    // LunarGlass defaults: the six stock passes on, the two custom
    // unsafe FP passes off (paper Section III-A/B).
    FlagSet d = FlagSet::lunarGlassDefaults();
    EXPECT_TRUE(d.has(kAdce));
    EXPECT_TRUE(d.has(kCoalesce));
    EXPECT_TRUE(d.has(kGvn));
    EXPECT_TRUE(d.has(kReassociate));
    EXPECT_TRUE(d.has(kUnroll));
    EXPECT_TRUE(d.has(kHoist));
    EXPECT_FALSE(d.has(kFpReassociate));
    EXPECT_FALSE(d.has(kDivToMul));
}

TEST(FlagSet, Spelling)
{
    if (flagCount() != 8)
        GTEST_SKIP() << "spellings pinned to the built-in eight; "
                        "GSOPT_EXTRA_PASSES widens the registry";
    EXPECT_EQ(FlagSet::none().str(), "{none}");
    FlagSet f = FlagSet::none().with(kUnroll).with(kDivToMul);
    EXPECT_EQ(f.str(), "{Unroll,Div to Mul}");
    EXPECT_EQ(allFlagSets().size(), 256u);
}

TEST(Explore, MotivatingExampleHasMultipleVariants)
{
    if (flagCount() != 8)
        GTEST_SKIP() << "variant counts pinned to the 8-pass lattice; "
                        "GSOPT_EXTRA_PASSES widens it";
    Exploration ex = exploreShader(corpus::motivatingExample());
    // 256 combos collapse to a handful of unique variants (Fig 4c).
    EXPECT_GE(ex.uniqueCount(), 4u);
    EXPECT_LE(ex.uniqueCount(), 48u);
    // Every combo maps to a valid variant.
    for (uint64_t c = 0; c < comboCount(); ++c) {
        const int v = ex.variantOf(FlagSet(c));
        ASSERT_GE(v, 0);
        ASSERT_LT(v, static_cast<int>(ex.uniqueCount()));
    }
    // Producer lists partition the 256 combos.
    size_t total = 0;
    for (const auto &v : ex.variants)
        total += v.producers.size();
    EXPECT_EQ(total, 256u);
}

TEST(Explore, FrontEndAndLoweringRunOncePerShader)
{
    if (flagCount() != 8)
        GTEST_SKIP() << "counter arithmetic pinned to 256 combos; "
                        "GSOPT_EXTRA_PASSES widens the lattice";
    ExploreCounters &c = exploreCounters();
    const uint64_t fe0 = c.frontEndRuns, lo0 = c.lowerRuns;
    const uint64_t pi0 = c.pipelineRuns, pr0 = c.printRuns;
    const uint64_t fh0 = c.fingerprintHits;

    Exploration ex = exploreShader(corpus::motivatingExample());

    // Exactly one preprocess/parse/sema and one lowering for all 256
    // combinations; the pass pipeline runs per combo; the printer runs
    // only for fingerprint-unique modules (at least one per variant,
    // far fewer than 256).
    EXPECT_EQ(c.frontEndRuns - fe0, 1u);
    EXPECT_EQ(c.lowerRuns - lo0, 1u);
    EXPECT_EQ(c.pipelineRuns - pi0, 256u);
    const uint64_t prints = c.printRuns - pr0;
    EXPECT_GE(prints, ex.uniqueCount());
    EXPECT_LT(prints, 256u);
    // Every combo either deduped on fingerprint or went to the printer.
    EXPECT_EQ((c.fingerprintHits - fh0) + prints, 256u);
}

TEST(Explore, TrivialShaderHasOneVariant)
{
    corpus::CorpusShader s;
    s.name = "test/trivial";
    s.family = "test";
    s.source = "#version 450\nout vec4 c;\nvoid main() { c = "
               "vec4(0.25); }\n";
    Exploration ex = exploreShader(s);
    EXPECT_EQ(ex.uniqueCount(), 1u);
    // No flag changes the output of a constant shader — a property of
    // every registered pass, not just the built-in eight.
    for (int b = 0; b < static_cast<int>(flagCount()); ++b)
        EXPECT_FALSE(ex.flagChangesOutput(b)) << flagName(b);
}

TEST(Explore, AdceNeverChangesOutput)
{
    // The paper's VI-D1 observation, verified on real corpus entries.
    for (const char *name :
         {"blur/weighted9", "pbr/full", "fxaa/high", "toon/bands3"}) {
        Exploration ex = exploreShader(*corpus::findShader(name));
        EXPECT_FALSE(ex.flagChangesOutput(kAdce)) << name;
    }
}

TEST(Explore, UnrollChangesLoopShaders)
{
    Exploration ex = exploreShader(corpus::motivatingExample());
    EXPECT_TRUE(ex.flagChangesOutput(kUnroll));
    EXPECT_TRUE(ex.flagChangesOutput(kFpReassociate));
    EXPECT_TRUE(ex.flagChangesOutput(kDivToMul));
}

TEST(Explore, MostlyHasFlagSemantics)
{
    Variant v;
    v.producers = {FlagSet(0b00000001), FlagSet(0b00000011),
                   FlagSet(0b00000010)};
    EXPECT_TRUE(v.mostlyHasFlag(0));  // 2 of 3
    EXPECT_TRUE(v.mostlyHasFlag(1));  // 2 of 3
    EXPECT_FALSE(v.mostlyHasFlag(2)); // 0 of 3
}

/** Reduced corpus keeps engine tests fast. */
std::vector<corpus::CorpusShader>
miniCorpus()
{
    std::vector<corpus::CorpusShader> out;
    for (const char *name :
         {"blur/weighted9", "simple/grayscale", "tonemap/aces",
          "toon/bands3", "deferred/lights4"}) {
        out.push_back(*corpus::findShader(name));
    }
    return out;
}

TEST(Engine, MeasuresEveryShaderOnEveryDevice)
{
    ExperimentEngine engine(miniCorpus());
    ASSERT_EQ(engine.results().size(), 5u);
    for (const auto &r : engine.results()) {
        EXPECT_EQ(r.byDevice.size(), gpu::allDevices().size());
        for (const auto &[dev, m] : r.byDevice) {
            EXPECT_GT(m.originalMeanNs, 0.0);
            EXPECT_EQ(m.variantMeanNs.size(),
                      r.exploration.uniqueCount());
        }
    }
}

TEST(Engine, BestNeverWorseThanFixedFlags)
{
    ExperimentEngine engine(miniCorpus());
    for (const auto &r : engine.results()) {
        for (gpu::DeviceId dev : gpu::allDevices()) {
            double best = r.bestSpeedup(dev);
            EXPECT_GE(best + 1e-9,
                      r.speedupFor(dev, FlagSet::lunarGlassDefaults()));
            EXPECT_GE(best + 1e-9, r.speedupFor(dev, FlagSet::all()));
            EXPECT_GE(best + 1e-9, r.speedupFor(dev, FlagSet::none()));
        }
    }
}

TEST(Engine, BestStaticIsArgmaxOfMean)
{
    ExperimentEngine engine(miniCorpus());
    for (gpu::DeviceId dev :
         {gpu::DeviceId::Amd, gpu::DeviceId::Arm}) {
        FlagSet best = engine.bestStaticFlags(dev);
        double best_mean = engine.meanSpeedup(dev, best);
        for (const FlagSet &f :
             {FlagSet::none(), FlagSet::all(),
              FlagSet::lunarGlassDefaults()}) {
            EXPECT_GE(best_mean + 1e-9, engine.meanSpeedup(dev, f));
        }
    }
}

TEST(Engine, PerShaderSeriesShapes)
{
    ExperimentEngine engine(miniCorpus());
    auto best = engine.perShaderBestSpeedups(gpu::DeviceId::Amd);
    auto defs = engine.perShaderSpeedups(gpu::DeviceId::Amd,
                                         FlagSet::lunarGlassDefaults());
    ASSERT_EQ(best.size(), 5u);
    ASSERT_EQ(defs.size(), 5u);
    for (size_t i = 0; i < best.size(); ++i)
        EXPECT_GE(best[i] + 1e-9, defs[i]);
}

TEST(Engine, MinimalBestFlagsPreferred)
{
    // bestFlags returns the smallest flag set among producers of the
    // winning variant: ADCE (a no-op) never appears in it.
    ExperimentEngine engine(miniCorpus());
    for (const auto &r : engine.results()) {
        FlagSet f = r.bestFlags(gpu::DeviceId::Intel);
        EXPECT_FALSE(f.has(kAdce))
            << r.exploration.shaderName << " " << f.str();
    }
}

TEST(Variant, MostlyHasFlagWithoutProducersIsFalse)
{
    // A variant with no recorded producers has no evidence about any
    // flag; the old `0 >= 0` comparison answered true for every bit.
    Variant v;
    for (int bit = 0; bit < static_cast<int>(flagCount()); ++bit)
        EXPECT_FALSE(v.mostlyHasFlag(bit)) << bit;
}

TEST(Variant, MostlyHasFlagMajorityVote)
{
    Variant v;
    v.producers = {FlagSet(0b001), FlagSet(0b011), FlagSet(0b100)};
    EXPECT_TRUE(v.mostlyHasFlag(0));  // 2 of 3
    EXPECT_FALSE(v.mostlyHasFlag(1)); // 1 of 3
    EXPECT_FALSE(v.mostlyHasFlag(2)); // 1 of 3
    // Exactly half counts as "mostly" (ties keep the seed behaviour).
    v.producers = {FlagSet(0b10), FlagSet(0b00)};
    EXPECT_TRUE(v.mostlyHasFlag(1));
}

} // namespace
} // namespace gsopt::tuner
