/**
 * @file
 * Unit tests for the catalog passes (licm, strength_reduce, tex_batch)
 * plus the N=11 pipeline property: with all three registered, the
 * prefix-sharing combination tree stays byte-identical to the linear
 * optimize() pipeline over the whole 2048-combination space.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "corpus/corpus.h"
#include "emit/emit.h"
#include "emit/offline.h"
#include "ir/interp.h"
#include "ir/verifier.h"
#include "ir/walk.h"
#include "passes/registry.h"
#include "support/rng.h"
#include "tuner/flags.h"

namespace gsopt {
namespace {

using ir::InterpEnv;
using passes::PassRegistry;
using tuner::FlagSet;

std::unique_ptr<ir::Module>
build(const std::string &src)
{
    auto m = emit::compileToIr(src);
    passes::canonicalize(*m);
    return m;
}

size_t
countOps(const ir::Module &m, ir::Opcode op)
{
    size_t n = 0;
    ir::forEachInstr(m.body,
                     [&](const ir::Instr &i) { n += i.op == op; });
    return n;
}

/** Instructions living inside loop bodies (any nesting). */
size_t
instrsInLoops(const ir::Module &m)
{
    size_t n = 0;
    ir::forEachNode(const_cast<ir::Module &>(m).body,
                    [&](ir::Node &node) {
                        if (auto *l = ir::dyn_cast<ir::LoopNode>(&node))
                            n += l->body.instructionCount();
                    });
    return n;
}

/** Ops of one kind inside loop bodies. */
size_t
opsInLoops(const ir::Module &m, ir::Opcode op)
{
    size_t n = 0;
    ir::forEachNode(const_cast<ir::Module &>(m).body,
                    [&](ir::Node &node) {
                        auto *l = ir::dyn_cast<ir::LoopNode>(&node);
                        if (!l)
                            return;
                        ir::forEachInstr(
                            l->body,
                            [&](const ir::Instr &i) { n += i.op == op; });
                    });
    return n;
}

InterpEnv
env1()
{
    InterpEnv env;
    env.inputs["uv"] = {0.3, 0.7};
    env.inputs["tone"] = {0.6};
    env.uniforms["gain"] = {1.5};
    return env;
}

void
expectSameOutputs(const ir::Module &before, const ir::Module &after)
{
    const InterpEnv env = env1();
    const auto want = ir::interpretReference(before, env);
    const auto got = ir::interpret(after, env);
    ASSERT_EQ(want.outputs.size(), got.outputs.size());
    for (const auto &[name, lanes] : want.outputs) {
        const auto &g = got.outputs.at(name);
        ASSERT_EQ(g.size(), lanes.size()) << name;
        for (size_t k = 0; k < lanes.size(); ++k)
            EXPECT_NEAR(g[k], lanes[k],
                        1e-9 * (1.0 + std::fabs(lanes[k])))
                << name << "[" << k << "]";
    }
}

/** Run a catalog stage (pass + trailing canonicalize) by id. */
void
applyStage(const char *id, ir::Module &m)
{
    for (const passes::PassDescriptor &d : passes::extraPassCatalog()) {
        if (d.id == id) {
            d.apply(m);
            return;
        }
    }
    FAIL() << "no catalog pass " << id;
}

/** Idempotence after canonicalize: a second stage run is a no-op. */
void
expectStageIdempotent(const char *id, const std::string &src)
{
    auto m = build(src);
    applyStage(id, *m);
    const std::string once = emit::emitGlsl(*m);
    applyStage(id, *m);
    EXPECT_EQ(emit::emitGlsl(*m), once) << id;
}

// ------------------------------------------------------------- licm

const char *kBigLoopSrc = R"(#version 450
in vec2 uv;
in float tone;
out vec4 c;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 100; i++) {
        float inv = sin(uv.x) * 3.0 + cos(uv.y);
        acc += inv * float(i) + tone;
    }
    c = vec4(acc);
}
)";

TEST(Licm, HoistsInvariantTreeOutOfUnrollDeclinedLoop)
{
    auto m = build(kBigLoopSrc);
    auto before = m->clone();
    // 100 trips: unroll's default cap (64) declines this loop.
    ASSERT_EQ(opsInLoops(*m, ir::Opcode::Sin), 1u);

    EXPECT_TRUE(passes::licm(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after licm");

    // The whole sin/cos/mul/add tree moved to the preheader; the
    // counter-dependent accumulation stayed.
    EXPECT_EQ(opsInLoops(*m, ir::Opcode::Sin), 0u);
    EXPECT_EQ(opsInLoops(*m, ir::Opcode::Cos), 0u);
    EXPECT_EQ(countOps(*m, ir::Opcode::Sin), 1u);
    EXPECT_GT(instrsInLoops(*m), 0u);
    expectSameOutputs(*before, *m);
}

TEST(Licm, HoistsLoopConstantTextureFetch)
{
    // Motion, not speculation: trips >= 1 means the fetch ran anyway.
    auto m = build(R"(#version 450
in vec2 uv;
uniform sampler2D tex;
out vec4 c;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 80; i++) {
        acc += texture(tex, uv).x * float(i);
    }
    c = vec4(acc);
}
)");
    auto before = m->clone();
    ASSERT_EQ(opsInLoops(*m, ir::Opcode::Texture), 1u);
    EXPECT_TRUE(passes::licm(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after licm");
    EXPECT_EQ(opsInLoops(*m, ir::Opcode::Texture), 0u);
    EXPECT_EQ(countOps(*m, ir::Opcode::Texture), 1u);
    expectSameOutputs(*before, *m);
}

TEST(Licm, BubblesInvariantsOutOfANest)
{
    auto m = build(R"(#version 450
in vec2 uv;
out vec4 c;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 70; i++) {
        for (int j = 0; j < 70; j++) {
            acc += sqrt(uv.x + 2.0) * float(i + j);
        }
    }
    c = vec4(acc);
}
)");
    auto before = m->clone();
    EXPECT_TRUE(passes::licm(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after licm");
    // sqrt(uv.x + 2.0) depends on neither counter: it must leave both
    // loops, not just the inner one.
    EXPECT_EQ(opsInLoops(*m, ir::Opcode::Sqrt), 0u);
    expectSameOutputs(*before, *m);
}

TEST(Licm, DoesNotFire)
{
    // Everything depends on the counter: nothing to hoist.
    auto counter_dep = build(R"(#version 450
out vec4 c;
void main() {
    float acc = 0.0;
    for (int i = 0; i < 100; i++) {
        acc += sin(float(i));
    }
    c = vec4(acc);
}
)");
    EXPECT_FALSE(passes::licm(*counter_dep));

    // Generic (non-canonical) loop: the body may never execute, so
    // moving code out would be speculation.
    auto generic = build(R"(#version 450
in float tone;
out vec4 c;
void main() {
    float acc = 0.0;
    int i = 0;
    while (acc < tone) {
        acc += sin(tone) * 0.25 + 0.1;
        i = i + 1;
    }
    c = vec4(acc);
}
)");
    const std::string before = emit::emitGlsl(*generic);
    EXPECT_FALSE(passes::licm(*generic));
    EXPECT_EQ(emit::emitGlsl(*generic), before);

    // Loads of a variable the loop stores stay put.
    auto stored = build(R"(#version 450
in float tone;
out vec4 c;
void main() {
    float acc = tone;
    for (int i = 0; i < 100; i++) {
        acc = acc * 0.5 + 0.25;
    }
    c = vec4(acc);
}
)");
    EXPECT_FALSE(passes::licm(*stored));
}

TEST(Licm, IdempotentAfterCanonicalize)
{
    expectStageIdempotent("licm", kBigLoopSrc);
}

// -------------------------------------------------- strength_reduce

TEST(StrengthReduce, PowSmallIntBecomesMultiplyChain)
{
    auto m = build(R"(#version 450
in float tone;
out vec4 c;
void main() {
    float a = pow(tone + 1.5, 2.0);
    float b = pow(tone + 1.5, 3.0);
    vec3 v = pow(vec3(tone + 2.0), vec3(4.0));
    c = vec4(a + b + v.x, v.yz, pow(tone + 1.2, 2.5));
}
)");
    auto before = m->clone();
    ASSERT_EQ(countOps(*m, ir::Opcode::Pow), 4u);
    EXPECT_TRUE(passes::strengthReduce(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after strength_reduce");
    // The fractional exponent stays; the integer ones are mul chains.
    EXPECT_EQ(countOps(*m, ir::Opcode::Pow), 1u);
    expectSameOutputs(*before, *m);
}

TEST(StrengthReduce, IntMulByPowerOfTwoBecomesAddChain)
{
    auto m = build(R"(#version 450
in float tone;
out vec4 c;
void main() {
    int x = int(tone * 10.0);
    int j = x * 4;
    c = vec4(float(j));
}
)");
    auto before = m->clone();
    ASSERT_EQ(countOps(*m, ir::Opcode::Mul), 2u); // tone*10, x*4
    EXPECT_TRUE(passes::strengthReduce(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after strength_reduce");
    // x*4 became two doublings; the float multiply is untouched.
    EXPECT_EQ(countOps(*m, ir::Opcode::Mul), 1u);
    EXPECT_GE(countOps(*m, ir::Opcode::Add), 2u);
    expectSameOutputs(*before, *m);
}

TEST(StrengthReduce, RefoldsIndexRecompute)
{
    // x*3 + x*5 -> x*8 -> three doublings: the index-arithmetic
    // refold feeding the power-of-two rule at the fixpoint.
    auto m = build(R"(#version 450
in float tone;
out vec4 c;
void main() {
    int x = int(tone * 9.0);
    int j = x * 3 + x * 5;
    c = vec4(float(j));
}
)");
    auto before = m->clone();
    EXPECT_TRUE(passes::strengthReduce(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after strength_reduce");
    size_t int_muls = 0;
    ir::forEachInstr(m->body, [&](const ir::Instr &i) {
        int_muls += i.op == ir::Opcode::Mul && i.type.isInt();
    });
    EXPECT_EQ(int_muls, 0u);
    expectSameOutputs(*before, *m);
}

TEST(StrengthReduce, DoesNotFire)
{
    // Non-constant exponent, non-power-of-two factor, float multiply,
    // plain x+x: all outside the rules.
    auto m = build(R"(#version 450
in float tone;
in vec2 uv;
out vec4 c;
void main() {
    int x = int(tone * 7.0);
    int j = x * 3;
    int k = x + x;
    c = vec4(pow(uv.x + 1.5, uv.y), float(j + k), uv);
}
)");
    const std::string before = emit::emitGlsl(*m);
    EXPECT_FALSE(passes::strengthReduce(*m));
    EXPECT_EQ(emit::emitGlsl(*m), before);
}

TEST(StrengthReduce, IdempotentAfterCanonicalize)
{
    expectStageIdempotent("strength_reduce", R"(#version 450
in float tone;
out vec4 c;
void main() {
    int x = int(tone * 10.0);
    int j = x * 3 + x * 5;
    c = vec4(pow(tone + 1.5, 3.0) + float(j));
}
)");
}

// -------------------------------------------------------- tex_batch

const char *kDupFetchSrc = R"(#version 450
in vec2 uv;
in float tone;
uniform sampler2D tex;
out vec4 c;
void main() {
    vec4 a = texture(tex, uv);
    vec4 b = vec4(0.25);
    if (tone > 0.5) {
        b = texture(tex, uv) * 2.0;
    }
    c = a + b;
}
)";

TEST(TexBatch, BatchesCrossBlockDuplicateFetch)
{
    auto m = build(kDupFetchSrc);
    auto before = m->clone();
    // The arm's fetch is a duplicate of the dominating one, but lives
    // in another block: local CSE cannot see it.
    ASSERT_EQ(countOps(*m, ir::Opcode::Texture), 2u);
    EXPECT_TRUE(passes::texBatch(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after tex_batch");
    EXPECT_EQ(countOps(*m, ir::Opcode::Texture), 1u);
    expectSameOutputs(*before, *m);
}

TEST(TexBatch, LoopConstantFetchCollapsesOntoDominatingFetch)
{
    auto m = build(R"(#version 450
in vec2 uv;
uniform sampler2D tex;
out vec4 c;
void main() {
    vec4 base = texture(tex, uv);
    float acc = 0.0;
    for (int i = 0; i < 72; i++) {
        acc += texture(tex, uv).y * float(i);
    }
    c = base + vec4(acc);
}
)");
    auto before = m->clone();
    ASSERT_EQ(countOps(*m, ir::Opcode::Texture), 2u);
    EXPECT_TRUE(passes::texBatch(*m));
    passes::canonicalize(*m);
    ir::verifyOrDie(*m, "after tex_batch");
    // One issue total: the body fetch reuses the pre-loop lanes.
    EXPECT_EQ(countOps(*m, ir::Opcode::Texture), 1u);
    EXPECT_EQ(opsInLoops(*m, ir::Opcode::Texture), 0u);
    expectSameOutputs(*before, *m);
}

TEST(TexBatch, DoesNotFire)
{
    // Different coordinates, different samplers, and sibling if-arms
    // (neither dominates the other) must all keep their fetches.
    auto m = build(R"(#version 450
in vec2 uv;
in float tone;
uniform sampler2D tex;
uniform sampler2D tex2;
out vec4 c;
void main() {
    vec4 a = texture(tex, uv);
    vec4 b = texture(tex, uv * 2.0);
    vec4 d = texture(tex2, uv);
    vec4 e = vec4(0.0);
    if (tone > 0.5) {
        e = texture(tex, uv + 0.25);
    } else {
        e = texture(tex, uv + 0.25) * 0.5;
    }
    c = a + b + d + e;
}
)");
    ASSERT_EQ(countOps(*m, ir::Opcode::Texture), 5u);
    passes::texBatch(*m);
    passes::canonicalize(*m);
    EXPECT_EQ(countOps(*m, ir::Opcode::Texture), 5u);
}

TEST(TexBatch, IdempotentAfterCanonicalize)
{
    expectStageIdempotent("tex_batch", kDupFetchSrc);
}

// ------------------------------------------- N=11 pipeline property

TEST(ElevenPassSpace, TreeMatchesLinearOnEveryCorpusShader)
{
    // Whole-corpus coverage at N=11: the full 2048-combination cross
    // product lives in the test below on three representatives; here
    // every corpus shader checks the structured combinations plus a
    // seeded random sample against the linear pipeline.
    passes::ScopedExtraPasses extras;
    const passes::PassRegistry &reg = PassRegistry::instance();
    ASSERT_EQ(reg.count(), 11u);

    std::vector<uint64_t> probes = {0, reg.comboCount() - 1,
                                    FlagSet::lunarGlassDefaults().bits};
    for (const passes::PassDescriptor &d : passes::extraPassCatalog())
        probes.push_back(1ull << reg.bitOf(d.id));

    for (const corpus::CorpusShader &shader : corpus::corpus()) {
        auto base = emit::compileToIr(shader.source, shader.defines);

        std::set<uint64_t> combos(probes.begin(), probes.end());
        Rng rng(fnv1a(shader.name));
        for (int draw = 0; draw < 8; ++draw)
            combos.insert(rng.below(reg.comboCount()));

        // One walk; text rendered only for the sampled combinations
        // (printing all 2048 leaves per shader would dominate the
        // suite's runtime for no extra coverage).
        uint64_t walked = 0;
        std::map<uint64_t, std::string> tree_text;
        passes::forEachFlagCombination(
            *base, [&](const passes::OptFlags &flags,
                       const ir::Module &module) {
                ++walked;
                if (combos.count(flags.mask()))
                    tree_text[flags.mask()] = emit::emitGlsl(module);
            });
        ASSERT_EQ(walked, reg.comboCount()) << shader.name;
        ASSERT_EQ(tree_text.size(), combos.size()) << shader.name;

        for (uint64_t bits : combos) {
            auto linear = base->clone();
            passes::optimize(*linear, FlagSet(bits).toOptFlags());
            ASSERT_EQ(emit::emitGlsl(*linear), tree_text.at(bits))
                << shader.name << " " << FlagSet(bits).str();
        }
    }
}

TEST(ElevenPassSpace, TreeMatchesLinearOverTheFullRegistry)
{
    passes::ScopedExtraPasses extras;
    ASSERT_EQ(tuner::flagCount(), 11u);
    ASSERT_EQ(tuner::comboCount(), 2048u);

    for (const char *name :
         {"simple/grayscale", "toon/bands3", "tonemap/aces"}) {
        const corpus::CorpusShader &shader =
            *corpus::findShader(name);
        auto base = emit::compileToIr(shader.source, shader.defines);

        std::map<uint64_t, std::string> tree_text;
        passes::forEachFlagCombination(
            *base, [&](const passes::OptFlags &flags,
                       const ir::Module &module) {
                tree_text[flags.mask()] = emit::emitGlsl(module);
            });
        ASSERT_EQ(tree_text.size(), 2048u) << name;

        for (const tuner::FlagSet &flags : tuner::allFlagSets()) {
            auto linear = base->clone();
            passes::optimize(*linear, flags.toOptFlags());
            ASSERT_EQ(emit::emitGlsl(*linear), tree_text.at(flags.bits))
                << name << " " << flags.str();
        }
    }
}

} // namespace
} // namespace gsopt
