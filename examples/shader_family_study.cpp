/**
 * @file
 * Übershader family study: how `#define`-specialised members of one
 * shader family respond differently to the same optimization flags —
 * the paper's observation (Section IV-A) that families share code so
 * "some optimizations apply frequently", yet specialisation changes
 * which variants win.
 *
 * For the PBR übershader family this prints, per member: preprocessed
 * size, unique variant count, and the best flags per platform.
 *
 * Build & run:  ./build/examples/shader_family_study [family]
 */
#include <cstdio>

#include "analysis/loc.h"
#include "corpus/corpus.h"
#include "runtime/framework.h"
#include "support/table.h"
#include "tuner/explore.h"

using namespace gsopt;

int
main(int argc, char **argv)
{
    const std::string family = argc > 1 ? argv[1] : "pbr";

    std::vector<const corpus::CorpusShader *> members;
    for (const auto &s : corpus::corpus()) {
        if (s.family == family)
            members.push_back(&s);
    }
    if (members.empty()) {
        std::printf("no family '%s'; families available:\n",
                    family.c_str());
        std::string last;
        for (const auto &s : corpus::corpus()) {
            if (s.family != last)
                std::printf("  %s\n", s.family.c_str());
            last = s.family;
        }
        return 1;
    }

    std::printf("Übershader family '%s': %zu members sharing one base "
                "source\n\n",
                family.c_str(), members.size());

    TextTable t({"member", "defines", "LoC", "variants",
                 "best on AMD", "best on ARM"});
    for (const corpus::CorpusShader *s : members) {
        tuner::Exploration ex = tuner::exploreShader(*s);
        std::string defines;
        for (const auto &[k, v] : s->defines)
            defines += (defines.empty() ? "" : ",") + k;
        if (defines.empty())
            defines = "(none)";

        auto best_on = [&](gpu::DeviceId id) {
            const gpu::DeviceModel &device = gpu::deviceModel(id);
            auto original = runtime::measureShader(
                ex.preprocessedOriginal, device, s->name + "/o");
            double best = -1e30;
            for (size_t v = 0; v < ex.variants.size(); ++v) {
                auto timing = runtime::measureShader(
                    ex.variants[v].source, device,
                    s->name + "/v" + std::to_string(v));
                best = std::max(
                    best, runtime::speedupPercent(original, timing));
            }
            return best;
        };

        t.addRow({s->name, defines,
                  std::to_string(analysis::executableLines(
                      ex.preprocessedOriginal)),
                  std::to_string(ex.uniqueCount()),
                  TextTable::num(best_on(gpu::DeviceId::Amd), 2) + "%",
                  TextTable::num(best_on(gpu::DeviceId::Arm), 2) +
                      "%"});
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
