/**
 * @file
 * Search-strategy comparison — the paper's Fig 5 shows per-shader
 * "iterative" search beating every static flag set, but exhaustive
 * iteration costs one on-device measurement per unique variant. This
 * tool asks the budget question: how close do cheaper strategies
 * (greedy hill climbing, random sampling) get to the exhaustive
 * optimum, and at how many measurements?
 *
 * For each probe shader x device it runs every strategy from
 * tuner::defaultStrategies plus extra random budgets, then prints
 * best-found speed-up and measurements spent, and a summary of the
 * optimum recovered per measurement budget. The roster includes the
 * model-guided strategies: `predicted` (static-feature prediction +
 * measured refinement) and `transfer` (seeded from the übershader
 * family's campaign-best flags, which pulls in the cached campaign
 * to build the prior).
 *
 * The tool is registry-sized: set GSOPT_EXTRA_PASSES=all (or a
 * comma list of licm, strength_reduce, tex_batch) to run the same
 * comparison over the widened 11-pass / 2048-combination space — the
 * exhaustive row's measurement bill grows with the unique-variant
 * count while the model-guided strategies keep their small budgets,
 * which is the point of having them.
 *
 * Build & run:  ./build/example_search_strategies [shader ...]
 */
#include <cstdio>
#include <map>
#include <vector>

#include "corpus/corpus.h"
#include "support/table.h"
#include "tuner/experiment.h"
#include "tuner/search.h"

using namespace gsopt;

namespace {

struct StrategyStats
{
    double speedupSum = 0;
    double optimumSum = 0;
    size_t measurementsSum = 0;
    int runs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty()) {
        names = {"blur/weighted9", "ssao/kernel16", "pbr/full",
                 "godrays/march32", "tier/dual_heavy"};
    }

    std::printf("Flag space: %zu registered passes, %llu combinations"
                "%s\n\n",
                tuner::flagCount(),
                static_cast<unsigned long long>(tuner::comboCount()),
                tuner::flagCount() > 8
                    ? " (extra passes registered)"
                    : " (set GSOPT_EXTRA_PASSES=all for the full "
                      "catalog)");

    // The transfer strategy seeds from the campaign's per-family best
    // flags; building the prior loads (or runs) the cached campaign.
    auto prior = std::make_shared<const tuner::FamilyPrior>(
        tuner::ExperimentEngine::instance().familyPrior());
    std::vector<std::unique_ptr<tuner::SearchStrategy>> strategies =
        tuner::defaultStrategies(/*randomBudget=*/16,
                                 /*randomSeed=*/0x5eed, prior);
    strategies.push_back(
        std::make_unique<tuner::RandomSearch>(8, 0x5eed));
    strategies.push_back(
        std::make_unique<tuner::RandomSearch>(4, 0x5eed));

    std::map<std::string, StrategyStats> stats;

    for (const std::string &name : names) {
        const corpus::CorpusShader *shader = corpus::findShader(name);
        if (!shader) {
            std::printf("unknown shader '%s'\n", name.c_str());
            return 1;
        }
        std::printf("=== %s ===\n", name.c_str());
        tuner::Exploration ex = tuner::exploreShader(*shader);
        std::printf("%zu unique variants\n\n", ex.uniqueCount());

        TextTable t({"device", "strategy", "best found", "vs optimum",
                     "measurements", "best flags"});
        for (gpu::DeviceId id : gpu::allDevices()) {
            const gpu::DeviceModel &device = gpu::deviceModel(id);

            // The exhaustive optimum anchors the "vs optimum" column.
            tuner::MeasurementOracle exhaustive_oracle(ex, device);
            const tuner::SearchOutcome optimum =
                tuner::ExhaustiveSearch{}.run(exhaustive_oracle);

            for (const auto &strategy : strategies) {
                tuner::MeasurementOracle oracle(ex, device);
                tuner::SearchOutcome out = strategy->run(oracle);
                StrategyStats &s = stats[strategy->name()];
                s.speedupSum += out.bestSpeedupPercent;
                s.optimumSum += optimum.bestSpeedupPercent;
                s.measurementsSum += out.measurementsUsed;
                ++s.runs;
                t.addRow({device.vendor, strategy->name(),
                          TextTable::num(out.bestSpeedupPercent, 2) +
                              "%",
                          TextTable::num(out.bestSpeedupPercent -
                                             optimum.bestSpeedupPercent,
                                         2) +
                              " pp",
                          std::to_string(out.measurementsUsed),
                          out.bestFlags.str()});
            }
        }
        std::printf("%s\n", t.str().c_str());
    }

    std::printf("=== summary over %zu shaders x %zu devices ===\n",
                names.size(), gpu::allDevices().size());
    TextTable s({"strategy", "mean best found", "mean optimum",
                 "mean measurements"});
    for (const auto &[name, st] : stats) {
        s.addRow({name,
                  TextTable::num(st.speedupSum / st.runs, 2) + "%",
                  TextTable::num(st.optimumSum / st.runs, 2) + "%",
                  TextTable::num(
                      static_cast<double>(st.measurementsSum) /
                          st.runs,
                      1)});
    }
    std::printf("%s", s.str().c_str());
    return 0;
}
