/**
 * @file
 * Quickstart: the 60-second tour of the library.
 *
 *   1. Compile a GLSL fragment shader.
 *   2. Optimize it with a chosen set of LunarGlass-style pass flags.
 *   3. Execute both versions in the reference interpreter to see that
 *      they compute the same pixel.
 *   4. Time both on a simulated GPU and print the speed-up.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "emit/offline.h"
#include "glsl/frontend.h"
#include "ir/interp.h"
#include "lower/lower.h"
#include "runtime/framework.h"

using namespace gsopt;

int
main()
{
    // A small shader with obvious optimization opportunities: a
    // constant-trip loop, constant weights, and a division by a value
    // that becomes a compile-time constant once the loop is unrolled.
    const char *source = R"(#version 450
in vec2 uv;
uniform sampler2D tex;
out vec4 fragColor;
void main() {
    const float w[5] = float[](0.1, 0.2, 0.4, 0.2, 0.1);
    float total = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < 5; i++) {
        total += w[i];
        fragColor += texture(tex, uv + vec2(float(i) * 0.01, 0.0)) *
                     w[i];
    }
    fragColor /= total;
}
)";

    // -- 1. the offline optimizer (GLSL in, GLSL out) -------------------
    passes::OptFlags flags;
    flags.unroll = true;        // flatten the constant loop
    flags.fpReassociate = true; // unsafe float reassociation
    flags.divToMul = true;      // /total -> * (1/total)
    std::string optimized = emit::optimizeShaderSource(source, flags);
    std::printf("---- optimized GLSL ----\n%s\n", optimized.c_str());

    // -- 2. functional equivalence via the reference interpreter --------
    glsl::CompiledShader before = glsl::compileShader(source);
    glsl::CompiledShader after = glsl::compileShader(optimized);
    ir::InterpEnv env = runtime::defaultEnvironment(before.interface);
    env.inputs["uv"] = {0.3, 0.7};
    auto pixel_before =
        ir::interpret(*lower::lowerShader(before), env);
    auto pixel_after = ir::interpret(*lower::lowerShader(after), env);
    std::printf("pixel before: %.6f %.6f %.6f %.6f\n",
                pixel_before.outputs["fragColor"][0],
                pixel_before.outputs["fragColor"][1],
                pixel_before.outputs["fragColor"][2],
                pixel_before.outputs["fragColor"][3]);
    std::printf("pixel after:  %.6f %.6f %.6f %.6f\n\n",
                pixel_after.outputs["fragColor"][0],
                pixel_after.outputs["fragColor"][1],
                pixel_after.outputs["fragColor"][2],
                pixel_after.outputs["fragColor"][3]);

    // -- 3. time both on every simulated GPU ----------------------------
    std::printf("%-10s %14s %14s %9s\n", "platform", "before (ns)",
                "after (ns)", "speed-up");
    for (gpu::DeviceId id : gpu::allDevices()) {
        const gpu::DeviceModel &device = gpu::deviceModel(id);
        auto t0 = runtime::measureShader(source, device, "qs/before");
        auto t1 =
            runtime::measureShader(optimized, device, "qs/after");
        std::printf("%-10s %14.0f %14.0f %+8.2f%%\n",
                    device.vendor.c_str(), t0.meanNs, t1.meanNs,
                    runtime::speedupPercent(t0, t1));
    }
    return 0;
}
