/**
 * @file
 * Per-shader autotuning — the paper's "smarter techniques to choose
 * when and how to optimize each shader for each platform" (Section II),
 * demonstrated on the motivating blur shader and friends.
 *
 * For each shader the tool explores every flag combination (deduped
 * by output text), measures every unique variant on every simulated
 * GPU, and reports the per-platform winner — compare the winners across
 * platforms to see why one static choice cannot win everywhere.
 *
 * Build & run:  ./build/examples/blur_autotune [shader ...]
 */
#include <cstdio>

#include "corpus/corpus.h"
#include "runtime/framework.h"
#include "support/table.h"
#include "tuner/explore.h"

using namespace gsopt;

namespace {

void
autotune(const corpus::CorpusShader &shader)
{
    std::printf("=== %s ===\n", shader.name.c_str());
    tuner::Exploration ex = tuner::exploreShader(shader);
    std::printf("%llu flag combinations -> %zu unique variants\n\n",
                static_cast<unsigned long long>(tuner::comboCount()),
                ex.uniqueCount());

    TextTable t({"platform", "best flags", "speed-up vs original",
                 "defaults", "all flags"});
    for (gpu::DeviceId id : gpu::allDevices()) {
        const gpu::DeviceModel &device = gpu::deviceModel(id);
        auto original = runtime::measureShader(
            ex.preprocessedOriginal, device, shader.name + "/orig");

        double best = -1e30;
        tuner::FlagSet best_flags;
        std::vector<double> by_variant;
        for (size_t v = 0; v < ex.variants.size(); ++v) {
            auto timing = runtime::measureShader(
                ex.variants[v].source, device,
                shader.name + "/v" + std::to_string(v));
            by_variant.push_back(
                runtime::speedupPercent(original, timing));
        }
        for (size_t v = 0; v < ex.variants.size(); ++v) {
            if (by_variant[v] > best) {
                best = by_variant[v];
                best_flags =
                    tuner::minimalProducer(ex.variants[v].producers);
            }
        }
        double defaults = by_variant[static_cast<size_t>(
            ex.variantOf(tuner::FlagSet::lunarGlassDefaults()))];
        double all = by_variant[static_cast<size_t>(
            ex.variantOf(tuner::FlagSet::all()))];
        t.addRow({device.vendor, best_flags.str(),
                  TextTable::num(best, 2) + "%",
                  TextTable::num(defaults, 2) + "%",
                  TextTable::num(all, 2) + "%"});
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i)
        names.push_back(argv[i]);
    if (names.empty())
        names = {"blur/weighted9", "ssao/kernel16", "tier/dual_heavy"};

    for (const std::string &name : names) {
        const corpus::CorpusShader *shader = corpus::findShader(name);
        if (!shader) {
            std::printf("unknown shader '%s'; available:\n",
                        name.c_str());
            for (const auto &s : corpus::corpus())
                std::printf("  %s\n", s.name.c_str());
            return 1;
        }
        autotune(*shader);
    }
    return 0;
}
