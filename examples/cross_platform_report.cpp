/**
 * @file
 * Cross-platform report: the headline numbers of the paper in one run —
 * average speed-ups per platform (Fig 5), the best static flags
 * (Table I), and each platform's biggest win and worst loss under the
 * default flags. This is the executive summary a GPU vendor or engine
 * team would want from the measurement campaign.
 *
 * Build & run:  ./build/examples/cross_platform_report
 */
#include <algorithm>
#include <cstdio>

#include "support/table.h"
#include "tuner/experiment.h"

using namespace gsopt;

int
main()
{
    const auto &eng = tuner::ExperimentEngine::instance();
    std::printf("Measurement campaign: %zu shaders x %llu flag "
                "combinations x %zu simulated GPUs\n\n",
                eng.results().size(),
                static_cast<unsigned long long>(tuner::comboCount()),
                gpu::allDevices().size());

    TextTable summary({"platform", "iterative best", "best static",
                       "defaults", "best static flags"});
    for (gpu::DeviceId dev : gpu::allDevices()) {
        tuner::FlagSet bs = eng.bestStaticFlags(dev);
        summary.addRow(
            {gpu::deviceVendor(dev),
             TextTable::num(eng.meanBestSpeedup(dev), 2) + "%",
             TextTable::num(eng.meanSpeedup(dev, bs), 2) + "%",
             TextTable::num(
                 eng.meanSpeedup(
                     dev, tuner::FlagSet::lunarGlassDefaults()),
                 2) +
                 "%",
             bs.str()});
    }
    std::printf("%s\n", summary.str().c_str());

    TextTable extremes({"platform", "biggest win (defaults)", "",
                        "worst loss (defaults)", ""});
    for (gpu::DeviceId dev : gpu::allDevices()) {
        auto speedups = eng.perShaderSpeedups(
            dev, tuner::FlagSet::lunarGlassDefaults());
        size_t best = 0, worst = 0;
        for (size_t i = 1; i < speedups.size(); ++i) {
            if (speedups[i] > speedups[best])
                best = i;
            if (speedups[i] < speedups[worst])
                worst = i;
        }
        extremes.addRow(
            {gpu::deviceVendor(dev),
             eng.results()[best].exploration.shaderName,
             TextTable::num(speedups[best], 2) + "%",
             eng.results()[worst].exploration.shaderName,
             TextTable::num(speedups[worst], 2) + "%"});
    }
    std::printf("Default-flag extremes per platform (why per-shader "
                "tuning matters):\n%s\n",
                extremes.str().c_str());

    std::printf(
        "Reading guide: platforms whose driver compilers already "
        "unroll and if-convert\n(NVIDIA, Intel) gain little from "
        "offline optimization; platforms with weaker\nJITs (AMD's "
        "Mesa stack of 2017, Mali, Adreno) leave wins on the table "
        "that an\noffline tool can claim — but the same flags that "
        "win on one shader can lose on\nanother, so iterative "
        "per-shader search beats any static choice everywhere.\n");
    return 0;
}
