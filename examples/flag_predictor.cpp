/**
 * @file
 * The paper's future-work direction, made concrete: "Future graphics
 * compiler technology may benefit from sophisticated profitability
 * analysis, and automated machine-learning based techniques are likely
 * to be attractive" (Section VIII).
 *
 * A thin client of the library's profitability model: static features
 * (tuner/features.h) feed per-device rules (tuner/predict.h) that pick
 * a flag set without measuring anything. The prediction is then
 * evaluated against the measured campaign: how much of the gap between
 * the best static flags and the per-shader iterative optimum does the
 * predictor recover? (PredictedSearch layers a small measured
 * refinement on top of the same model — see
 * example_search_strategies and bench/micro_search for that
 * comparison on the budget curve.)
 *
 * Build & run:  ./build/example_flag_predictor
 */
#include <cstdio>

#include "support/table.h"
#include "tuner/experiment.h"
#include "tuner/features.h"
#include "tuner/predict.h"

using namespace gsopt;

int
main()
{
    const auto &eng = tuner::ExperimentEngine::instance();
    std::printf("Profitability-heuristic flag prediction over %zu "
                "shaders\n\n",
                eng.results().size());

    TextTable t({"platform", "best static", "predicted", "iterative",
                 "predicted vs static"});
    for (gpu::DeviceId dev : gpu::allDevices()) {
        const double stat =
            eng.meanSpeedup(dev, eng.bestStaticFlags(dev));
        const double best = eng.meanBestSpeedup(dev);

        double predicted_sum = 0;
        for (const auto &r : eng.results()) {
            const tuner::ShaderFeatures &f =
                tuner::featuresOf(r.exploration);
            tuner::FlagSet flags = tuner::predictFlags(dev, f);
            predicted_sum += r.speedupFor(dev, flags);
        }
        const double predicted =
            predicted_sum /
            static_cast<double>(eng.results().size());

        t.addRow({gpu::deviceVendor(dev),
                  TextTable::num(stat, 2) + "%",
                  TextTable::num(predicted, 2) + "%",
                  TextTable::num(best, 2) + "%",
                  TextTable::pct((predicted - stat) / 100.0, 2)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "'best static' is the measurement-trained oracle of the "
        "paper's Table I;\n'iterative' is the per-shader exhaustive "
        "optimum. The predictor reaches within a\nfraction of a "
        "percent of the oracle on every platform — and beats it on "
        "the\ni-cache-limited Adreno, where a single static choice "
        "must compromise — using\nonly cheap static features and no "
        "measurements at all. That is the paper's\nclosing "
        "'sophisticated profitability analysis' direction made "
        "concrete.\n");
    return 0;
}
