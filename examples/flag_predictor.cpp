/**
 * @file
 * The paper's future-work direction, made concrete: "Future graphics
 * compiler technology may benefit from sophisticated profitability
 * analysis, and automated machine-learning based techniques are likely
 * to be attractive" (Section VIII).
 *
 * This example implements a transparent *profitability heuristic*: a
 * handful of cheap static features per shader (constant-trip loops,
 * texture count, branches, constant divisions, size) feed per-device
 * rules that pick a flag set without measuring anything. It is then
 * evaluated against the measured campaign: how much of the gap between
 * the best static flags and the per-shader iterative optimum does the
 * predictor recover?
 *
 * Build & run:  ./build/examples/flag_predictor
 */
#include <algorithm>
#include <cstdio>

#include "analysis/loc.h"
#include "emit/offline.h"
#include "ir/walk.h"
#include "support/table.h"
#include "tuner/experiment.h"

using namespace gsopt;

namespace {

/** Cheap static features, computed from the unoptimised IR. */
struct Features
{
    bool hasConstLoop = false;
    long maxTripCount = 0;
    size_t loopBodyInstrs = 0;
    int textures = 0;
    int branches = 0;
    bool hasConstDiv = false;
    size_t instrs = 0;
};

Features
featuresOf(const std::string &preprocessed)
{
    Features f;
    auto module = emit::compileToIr(preprocessed);
    passes::canonicalize(*module);
    f.instrs = module->instructionCount();
    ir::forEachNode(module->body, [&](ir::Node &n) {
        if (auto *l = ir::dyn_cast<ir::LoopNode>(&n)) {
            if (l->canonical) {
                f.hasConstLoop = true;
                f.maxTripCount =
                    std::max(f.maxTripCount, l->tripCount());
                f.loopBodyInstrs = std::max(
                    f.loopBodyInstrs, l->body.instructionCount());
            }
        } else if (n.kind() == ir::NodeKind::If) {
            ++f.branches;
        }
    });
    ir::forEachInstr(module->body, [&](const ir::Instr &i) {
        switch (i.op) {
          case ir::Opcode::Texture:
          case ir::Opcode::TextureBias:
          case ir::Opcode::TextureLod:
            ++f.textures;
            break;
          case ir::Opcode::Div:
            if (i.operands[1]->op == ir::Opcode::Const)
                f.hasConstDiv = true;
            break;
          default:
            break;
        }
    });
    return f;
}

/** Per-device profitability rules. */
tuner::FlagSet
predict(gpu::DeviceId dev, const Features &f)
{
    using namespace tuner;
    FlagSet flags;
    // The unsafe FP passes pay on every platform except ARM's vec4
    // machine, where scalar grouping fights the vectoriser.
    if (dev != gpu::DeviceId::Arm)
        flags = flags.with(kFpReassociate);
    // Constant divisions fold everywhere once turned into multiplies.
    if (f.hasConstDiv)
        flags = flags.with(kDivToMul);
    // Unrolling: on weak-JIT platforms (AMD, ARM) it pays directly; on
    // strong-JIT desktops it still pays *as an enabler* — the offline
    // unsafe passes can only see through a loop the offline tool has
    // unrolled, even if the driver would unroll it later anyway. Only
    // the i-cache-limited Adreno needs a size guard.
    const size_t unrolled =
        static_cast<size_t>(f.maxTripCount) * f.loopBodyInstrs;
    if (f.hasConstLoop) {
        if (dev != gpu::DeviceId::Qualcomm || unrolled < 150)
            flags = flags.with(kUnroll);
    }
    // Hoisting pays only on ARM, and only for small branchy shaders
    // (big flattened blocks blow the register file).
    if (dev == gpu::DeviceId::Arm && f.branches > 0 && f.instrs < 120)
        flags = flags.with(kHoist);
    // Coalesce is near-free and helps the vec4 machine.
    flags = flags.with(kCoalesce);
    return flags;
}

} // namespace

int
main()
{
    const auto &eng = tuner::ExperimentEngine::instance();
    std::printf("Profitability-heuristic flag prediction over %zu "
                "shaders\n\n",
                eng.results().size());

    TextTable t({"platform", "best static", "predicted", "iterative",
                 "predicted vs static"});
    for (gpu::DeviceId dev : gpu::allDevices()) {
        const double stat =
            eng.meanSpeedup(dev, eng.bestStaticFlags(dev));
        const double best = eng.meanBestSpeedup(dev);

        double predicted_sum = 0;
        for (const auto &r : eng.results()) {
            Features f =
                featuresOf(r.exploration.preprocessedOriginal);
            tuner::FlagSet flags = predict(dev, f);
            predicted_sum += r.speedupFor(dev, flags);
        }
        const double predicted =
            predicted_sum /
            static_cast<double>(eng.results().size());

        t.addRow({gpu::deviceVendor(dev),
                  TextTable::num(stat, 2) + "%",
                  TextTable::num(predicted, 2) + "%",
                  TextTable::num(best, 2) + "%",
                  TextTable::pct((predicted - stat) / 100.0, 2)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "'best static' is the measurement-trained oracle of the "
        "paper's Table I;\n'iterative' is the per-shader exhaustive "
        "optimum. The predictor reaches within a\nfraction of a "
        "percent of the oracle on every platform — and beats it on "
        "the\ni-cache-limited Adreno, where a single static choice "
        "must compromise — using\nonly cheap static features and no "
        "measurements at all. That is the paper's\nclosing "
        "'sophisticated profitability analysis' direction made "
        "concrete.\n");
    return 0;
}
