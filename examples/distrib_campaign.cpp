/**
 * @file
 * Distributed campaign walkthrough: fan a flag-tuning campaign out
 * over worker subprocesses, watch the coordinator merge and verify
 * their shards, then resume over the merged directory.
 *
 *   1. Pick a handful of corpus shaders (one work unit each).
 *   2. Run a CampaignCoordinator with subprocess workers — each
 *      worker is a re-execution of this binary speaking the
 *      support/ipc frame protocol, which is why main() starts with
 *      maybeRunWorker().
 *   3. Print the health report (units completed, requeues, lease
 *      expiries...).
 *   4. Run a second coordinator over the same directory: every unit
 *      is satisfied from the merged shards — the resume path.
 *
 * Knobs: GSOPT_DISTRIB_WORKERS, GSOPT_LEASE_MS, and the usual
 * campaign environment (GSOPT_FAULTS fault plans apply to workers
 * too — try GSOPT_FAULTS="worker.item:0.3:7" to watch requeues).
 *
 * Build & run:  ./build/examples/example_distrib_campaign
 */
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "corpus/corpus.h"
#include "tuner/distrib.h"

using namespace gsopt;

int
main()
{
    // Workers are re-executions of this binary: divert before doing
    // anything else. (Forgetting this line is detected — the
    // coordinator kills workers that never complete the handshake.)
    if (tuner::distrib::maybeRunWorker())
        return 0;

    std::vector<corpus::CorpusShader> shaders;
    for (const char *name :
         {"blur/weighted9", "tonemap/aces", "toon/bands3",
          "fxaa/high", "ssao/kernel16", "uber/car_chase"})
        shaders.push_back(*corpus::findShader(name));

    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("gsopt-example-distrib-" + std::to_string(::getpid())))
            .string();

    // -- 2. the distributed run --------------------------------------
    tuner::distrib::Options opts;
    opts.workers = 3; // or leave 0 and set GSOPT_DISTRIB_WORKERS
    opts.transport = tuner::distrib::TransportKind::Subprocess;
    std::printf("Running %zu units on %u subprocess workers...\n",
                shaders.size(), opts.workers);
    tuner::distrib::CampaignCoordinator coordinator(shaders, dir,
                                                    opts);
    const tuner::distrib::DistribHealth &health = coordinator.run();
    std::printf("%s\n", health.summary().c_str());

    // -- 4. resume: the merged directory is a normal shard cache ------
    tuner::distrib::CampaignCoordinator resumed(shaders, dir, opts);
    const tuner::distrib::DistribHealth &again = resumed.run();
    std::printf("Second run over the merged directory: %llu of %llu "
                "units from cache.\n",
                static_cast<unsigned long long>(again.unitsFromCache),
                static_cast<unsigned long long>(again.unitsTotal));

    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    return health.healthy() && again.unitsFromCache ==
                                   again.unitsTotal
               ? 0
               : 1;
}
