/**
 * @file
 * Distributed-campaign scaling: the same shard campaign run through
 * the coordinator at 1, 2, and 4 subprocess workers, wall-clock per
 * configuration, merged shard directories verified byte-identical
 * across worker counts (the merge invariant: worker count is a
 * throughput knob, never an output knob).
 *
 * This binary is re-executed as its own worker pool, so main()
 * diverts into maybeRunWorker() before anything else.
 *
 * Acceptance gate: >= 1.8x wall-time at 4 workers vs 1, enforced
 * when the host has >= 4 hardware threads (campaign work is CPU
 * bound, so a 1-core container cannot express the speedup; the
 * byte-identity invariant is enforced everywhere). Also reports the
 * coordination tax: 1-worker distributed vs a plain in-process
 * engine. Pass --full to run the entire corpus instead of the probe
 * set.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "tuner/distrib.h"
#include "tuner/experiment.h"

using namespace gsopt;

namespace {

namespace fs = std::filesystem;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** filename -> raw file bytes for a whole directory. */
std::map<std::string, std::string>
dirBytes(const std::string &dir)
{
    std::map<std::string, std::string> out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        std::ifstream f(entry.path(), std::ios::binary);
        out[entry.path().filename().string()] =
            std::string((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    if (tuner::distrib::maybeRunWorker())
        return 0;

    const bool full =
        argc > 1 && std::strcmp(argv[1], "--full") == 0;

    bench::banner("micro_distrib",
                  "Coordinator/worker campaign scaling: wall-clock vs "
                  "subprocess worker count, merged shard directories "
                  "verified byte-identical");

    std::vector<corpus::CorpusShader> probe;
    if (full) {
        probe = corpus::corpus();
    } else {
        for (const char *name :
             {"blur/weighted9", "simple/grayscale", "tonemap/aces",
              "toon/bands3", "deferred/lights4", "pbr/full",
              "fxaa/high", "godrays/march32", "ssao/kernel16",
              "uber/car_chase"}) {
            probe.push_back(*corpus::findShader(name));
        }
    }

    const std::string root =
        (fs::temp_directory_path() /
         ("gsopt-micro-distrib-" + std::to_string(::getpid())))
            .string();

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("Probe set: %zu shaders, one work unit each "
                "(subprocess transport, %u hardware threads)%s\n\n",
                probe.size(), cores, full ? " (full corpus)" : "");

    // Baseline: the plain single-process engine over the same work,
    // to price the coordination tax (spawn + frames + merge).
    const double base0 = nowMs();
    {
        tuner::ExperimentEngine baseline(probe, /*threads=*/1);
    }
    const double baselineMs = nowMs() - base0;

    struct Run
    {
        unsigned workers;
        double wallMs;
        std::string dir;
    };
    std::vector<Run> runs;
    for (unsigned workers : {1u, 2u, 4u}) {
        Run run;
        run.workers = workers;
        run.dir = root + "/w" + std::to_string(workers);
        tuner::distrib::Options opts;
        opts.workers = workers;
        opts.transport = tuner::distrib::TransportKind::Subprocess;
        tuner::distrib::CampaignCoordinator coord(probe, run.dir,
                                                  opts);
        const double t0 = nowMs();
        const tuner::distrib::DistribHealth &h = coord.run();
        run.wallMs = nowMs() - t0;
        if (!h.healthy())
            std::printf("%s", h.summary().c_str());
        runs.push_back(std::move(run));
    }

    bool identical = true;
    const auto reference = dirBytes(runs[0].dir);
    for (size_t i = 1; i < runs.size(); ++i)
        identical &= dirBytes(runs[i].dir) == reference;

    std::printf("Distributed campaign wall-clock by worker count:\n");
    std::printf("  %-10s %12s %10s\n", "workers", "wall", "speedup");
    for (const Run &r : runs)
        std::printf("  %-10u %9.1f ms %9.2fx\n", r.workers, r.wallMs,
                    runs[0].wallMs / r.wallMs);

    const double speedup4 = runs[0].wallMs / runs.back().wallMs;
    std::printf("\nPlain 1-thread engine baseline: %9.1f ms "
                "(coordination tax at 1 worker: %+.1f%%)\n",
                baselineMs,
                100.0 * (runs[0].wallMs - baselineMs) / baselineMs);
    std::printf("Merged shard directories: %s\n",
                identical ? "byte-identical across worker counts"
                          : "MISMATCH (merge invariant broken!)");

    // The campaign is CPU-bound: a host with fewer than 4 hardware
    // threads cannot express a 4-worker speedup, so the wall-clock
    // gate is only meaningful (and only enforced) at >= 4 cores.
    const bool gate = cores >= 4;
    std::printf("4-worker acceptance (>= 1.80x): %.2fx %s\n", speedup4,
                !gate ? "SKIPPED (needs >= 4 hardware threads)"
                : speedup4 >= 1.8 ? "PASS"
                                  : "FAIL");

    std::error_code ec;
    fs::remove_all(root, ec);
    return identical && (!gate || speedup4 >= 1.8) ? 0 : 1;
}
