/**
 * @file
 * Fig 5 reproduction: average percentage speed-ups across all shaders
 * per platform — per-shader best ("iterative"), the best static flag
 * set, the LunarGlass defaults, and the all-off passthrough.
 */
#include "bench_common.h"

using namespace gsopt;

int
main()
{
    bench::banner("Figure 5",
                  "Average percentage speed-up across all shaders "
                  "(paper: iterative 1-4%, default LunarGlass flags "
                  "0 to -0.7%)");
    const auto &eng = bench::engine();

    TextTable t({"Platform", "best iterative", "best static",
                 "LunarGlass defaults", "passthrough (no flags)"});
    for (gpu::DeviceId dev : gpu::allDevices()) {
        tuner::FlagSet best_static = eng.bestStaticFlags(dev);
        t.addRow({gpu::deviceVendor(dev),
                  TextTable::num(eng.meanBestSpeedup(dev), 2) + "%",
                  TextTable::num(eng.meanSpeedup(dev, best_static), 2) +
                      "%",
                  TextTable::num(
                      eng.meanSpeedup(
                          dev, tuner::FlagSet::lunarGlassDefaults()),
                      2) +
                      "%",
                  TextTable::num(
                      eng.meanSpeedup(dev, tuner::FlagSet::none()), 2) +
                      "%"});
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
