/**
 * @file
 * Fig 9 reproduction: percentage speed-up of each flag *in isolation*
 * against the all-flags-off LunarGlass passthrough baseline (the
 * paper's convention, which removes code-generation artefacts from the
 * comparison), per platform. The violin plots become five-number
 * summaries here.
 */
#include "bench_common.h"

using namespace gsopt;

int
main()
{
    bench::banner("Figure 9",
                  "Percentage speed-up from individual flags for each "
                  "platform (vs all-off passthrough)");
    const auto &eng = bench::engine();

    for (gpu::DeviceId dev : gpu::allDevices()) {
        std::printf("---- %s (%s) ----\n", gpu::deviceVendor(dev),
                    gpu::deviceModel(dev).name.c_str());
        TextTable t({"Flag", "min", "q1", "median", "mean", "q3",
                     "max"});
        for (int bit = 0; bit < static_cast<int>(tuner::flagCount()); ++bit) {
            std::vector<double> speedups;
            for (const auto &r : eng.results())
                speedups.push_back(r.isolatedFlagSpeedup(dev, bit));
            Summary s = summarize(speedups);
            t.addRow({tuner::flagName(bit), TextTable::num(s.min, 2),
                      TextTable::num(s.q1, 2),
                      TextTable::num(s.median, 2),
                      TextTable::num(s.mean, 3),
                      TextTable::num(s.q3, 2),
                      TextTable::num(s.max, 2)});
        }
        std::printf("%s\n", t.str().c_str());
    }

    std::printf(
        "Paper reading (Section VI-D): unrolling always helps AMD "
        "(up to +35%%) and is\nARM's best flag; it is near-zero on "
        "NVIDIA/Intel whose JITs unroll themselves,\nand a mixed bag "
        "on Qualcomm (-8%% case). FP-Reassociate has positive means\n"
        "everywhere except ARM. Hoist has pathological slow-down cases "
        "on every desktop\nplatform. ADCE is exactly zero.\n");
    if (tuner::flagCount() > 8) {
        std::printf(
            "\nCatalog rows (beyond the paper's eight): LICM and Tex "
            "Batch pay on the\nmobile parts (no JIT unroll budget to "
            "hide behind, no JIT GVN to dedup\nfetches); Strength "
            "Reduce's pow->multiply chains pay everywhere a\n"
            "transcendental unit is slower than the MAD pipe.\n");
    } else {
        std::printf(
            "\nSet GSOPT_EXTRA_PASSES=all to add the catalog passes "
            "(licm,\nstrength_reduce, tex_batch) as extra rows.\n");
    }
    return 0;
}
