/**
 * @file
 * google-benchmark microbenchmarks of the toolchain itself: front end,
 * lowering, each optimization pass, the whole pipeline, driver
 * compilation, and the measurement protocol. These are the ablation
 * numbers behind DESIGN.md's "structured IR keeps passes cheap" claim
 * and they bound the cost of the exhaustive 256-combination search.
 */
#include <benchmark/benchmark.h>

#include "corpus/corpus.h"
#include "emit/offline.h"
#include "glsl/frontend.h"
#include "gpu/driver.h"
#include "ir/interp.h"
#include "lower/lower.h"
#include "passes/passes.h"
#include "runtime/framework.h"
#include "tuner/explore.h"

using namespace gsopt;

namespace {

const corpus::CorpusShader &
heavyShader()
{
    return *corpus::findShader("uber/car_chase");
}

void
BM_FrontEnd(benchmark::State &state)
{
    const auto &s = heavyShader();
    for (auto _ : state) {
        auto cs = glsl::compileShader(s.source, s.defines);
        benchmark::DoNotOptimize(cs.ast.functions.size());
    }
}
BENCHMARK(BM_FrontEnd);

void
BM_Lowering(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto cs = glsl::compileShader(s.source, s.defines);
    for (auto _ : state) {
        auto module = lower::lowerShader(cs);
        benchmark::DoNotOptimize(module->instructionCount());
    }
}
BENCHMARK(BM_Lowering);

void
BM_Canonicalize(benchmark::State &state)
{
    const auto &s = heavyShader();
    for (auto _ : state) {
        state.PauseTiming();
        auto module = emit::compileToIr(s.source, s.defines);
        state.ResumeTiming();
        passes::canonicalize(*module);
        benchmark::DoNotOptimize(module->instructionCount());
    }
}
BENCHMARK(BM_Canonicalize);

template <bool (*Pass)(ir::Module &)>
void
BM_PassAfterCanonicalize(benchmark::State &state)
{
    const auto &s = heavyShader();
    for (auto _ : state) {
        state.PauseTiming();
        auto module = emit::compileToIr(s.source, s.defines);
        passes::canonicalize(*module);
        state.ResumeTiming();
        Pass(*module);
        benchmark::DoNotOptimize(module->instructionCount());
    }
}

bool runUnroll(ir::Module &m) { return passes::unroll(m); }
bool runHoist(ir::Module &m) { return passes::hoist(m); }

BENCHMARK(BM_PassAfterCanonicalize<runUnroll>)->Name("BM_Unroll");
BENCHMARK(BM_PassAfterCanonicalize<runHoist>)->Name("BM_Hoist");
BENCHMARK(BM_PassAfterCanonicalize<passes::coalesce>)
    ->Name("BM_Coalesce");
BENCHMARK(BM_PassAfterCanonicalize<passes::gvn>)->Name("BM_Gvn");
BENCHMARK(BM_PassAfterCanonicalize<passes::reassociate>)
    ->Name("BM_Reassociate");
BENCHMARK(BM_PassAfterCanonicalize<passes::fpReassociate>)
    ->Name("BM_FpReassociate");
BENCHMARK(BM_PassAfterCanonicalize<passes::divToMul>)
    ->Name("BM_DivToMul");
BENCHMARK(BM_PassAfterCanonicalize<passes::adce>)->Name("BM_Adce");

void
BM_FullPipelineAllFlags(benchmark::State &state)
{
    const auto &s = heavyShader();
    for (auto _ : state) {
        std::string out = emit::optimizeShaderSource(
            s.source, passes::OptFlags::all(), s.defines);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_FullPipelineAllFlags);

void
BM_DriverCompileNvidia(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto cs = glsl::compileShader(s.source, s.defines);
    const std::string &text = cs.preprocessedText;
    const auto &dev = gpu::deviceModel(gpu::DeviceId::Nvidia);
    for (auto _ : state) {
        auto bin = gpu::driverCompileUncached(text, dev);
        benchmark::DoNotOptimize(bin.cyclesPerFragment);
    }
}
BENCHMARK(BM_DriverCompileNvidia);

void
BM_DriverCompileMali(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto cs = glsl::compileShader(s.source, s.defines);
    const std::string &text = cs.preprocessedText;
    const auto &dev = gpu::deviceModel(gpu::DeviceId::Arm);
    for (auto _ : state) {
        auto bin = gpu::driverCompileUncached(text, dev);
        benchmark::DoNotOptimize(bin.cyclesPerFragment);
    }
}
BENCHMARK(BM_DriverCompileMali);

void
BM_DriverCompileCacheHit(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto cs = glsl::compileShader(s.source, s.defines);
    const std::string &text = cs.preprocessedText;
    const auto &dev = gpu::deviceModel(gpu::DeviceId::Nvidia);
    gpu::driverCompile(text, dev); // warm the content-addressed cache
    for (auto _ : state) {
        auto bin = gpu::driverCompile(text, dev);
        benchmark::DoNotOptimize(bin.cyclesPerFragment);
    }
}
BENCHMARK(BM_DriverCompileCacheHit);

void
BM_Interpret(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto cs = glsl::compileShader(s.source, s.defines);
    auto module = lower::lowerShader(cs);
    passes::canonicalize(*module);
    for (auto _ : state) {
        auto r = ir::interpret(*module, {});
        benchmark::DoNotOptimize(r.executedInstructions);
    }
}
BENCHMARK(BM_Interpret);

void
BM_InterpretMapReference(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto cs = glsl::compileShader(s.source, s.defines);
    auto module = lower::lowerShader(cs);
    passes::canonicalize(*module);
    for (auto _ : state) {
        auto r = ir::interpretReference(*module, {});
        benchmark::DoNotOptimize(r.executedInstructions);
    }
}
BENCHMARK(BM_InterpretMapReference);

void
BM_ModuleClone(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto module = emit::compileToIr(s.source, s.defines);
    passes::canonicalize(*module);
    for (auto _ : state) {
        auto copy = module->clone();
        benchmark::DoNotOptimize(copy->instructionCount());
    }
}
BENCHMARK(BM_ModuleClone);

void
BM_Fingerprint(benchmark::State &state)
{
    const auto &s = heavyShader();
    auto module = emit::compileToIr(s.source, s.defines);
    passes::canonicalize(*module);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ir::fingerprint(*module));
    }
}
BENCHMARK(BM_Fingerprint);

void
BM_MeasurementProtocol(benchmark::State &state)
{
    const auto &s = *corpus::findShader("simple/grayscale");
    const auto &dev = gpu::deviceModel(gpu::DeviceId::Intel);
    int i = 0;
    for (auto _ : state) {
        auto r = runtime::measureShader(s.source, dev,
                                        "bench" + std::to_string(i++));
        benchmark::DoNotOptimize(r.meanNs);
    }
}
BENCHMARK(BM_MeasurementProtocol);

void
BM_ExhaustiveExploration(benchmark::State &state)
{
    const auto &s = corpus::motivatingExample();
    for (auto _ : state) {
        auto ex = tuner::exploreShader(s);
        benchmark::DoNotOptimize(ex.uniqueCount());
    }
}
BENCHMARK(BM_ExhaustiveExploration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
