/**
 * @file
 * Fig 3 reproduction: (left) the Listing 1 motivating blur shader,
 * before/after optimization, with per-platform percentage gains;
 * (right) the distribution of applying the same full optimization set
 * to every corpus shader on the ARM Mali platform.
 */
#include <algorithm>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "emit/offline.h"

using namespace gsopt;

int
main()
{
    bench::banner("Figure 3",
                  "Motivating example: code before and after "
                  "optimization, percentage gains per platform, and the "
                  "distribution of the same flags across all shaders on "
                  "ARM");

    const auto &eng = bench::engine();
    const auto &r = eng.result("blur/weighted9");

    // ---- Listing 1 / Listing 2 ---------------------------------------
    std::printf("---- Listing 1 (before optimization) ----\n%s\n",
                corpus::motivatingExample().source.c_str());
    std::string optimized = emit::optimizeShaderSource(
        corpus::motivatingExample().source, passes::OptFlags::all(),
        corpus::motivatingExample().defines);
    std::printf("---- Listing 2 (after optimization, all passes) "
                "----\n%s\n",
                optimized.c_str());

    // ---- per-platform gains --------------------------------------------
    TextTable t({"Platform", "GPU", "best speed-up", "best flags"});
    for (gpu::DeviceId dev : gpu::allDevices()) {
        const auto &model = gpu::deviceModel(dev);
        t.addRow({model.vendor, model.name,
                  TextTable::num(r.bestSpeedup(dev), 2) + "%",
                  r.bestFlags(dev).str()});
    }
    std::printf("Per-platform speed-up of the fully optimised "
                "motivating shader vs the original\n(paper: 7-28%% on "
                "desktop, 35-45%% on mobile):\n\n%s\n",
                t.str().c_str());

    // ---- Fig 3 right: distribution on ARM ------------------------------
    auto speedups =
        eng.perShaderSpeedups(gpu::DeviceId::Arm, tuner::FlagSet::all());
    Summary s = summarize(speedups);
    std::printf("Applying ALL optimizations to every shader on "
                "ARM Mali-T880 (paper: gains up\nto ~10%%, losses up to "
                "~30%% — one-size-fits-all often does more harm than "
                "good):\n\n");
    std::printf("  %s\n\n", s.str().c_str());
    std::printf("%s\n",
                renderHistogram(histogram(speedups, 16), 48).c_str());
    return 0;
}
