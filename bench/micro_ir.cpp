/**
 * @file
 * IR storage microbenchmark: clone and destroy throughput of
 * arena-backed modules, the primitive the exploration flag tree leans
 * on (one clone per executed pass edge).
 *
 * Reports modules/s, us per clone+destroy, arena bytes per module, and
 * chunk counts, next to the measured figures of the heap-backed seed
 * (per-Instr unique_ptr allocations, hash-map operand remapping) so the
 * before-vs-after trajectory stays visible:
 *
 *   seed (commit 6f21584, RelWithDebInfo, same probe shaders):
 *     simple/grayscale   12 instrs:   883 k clones/s   (1.1 us)
 *     blur/weighted9     27 instrs:   441 k clones/s   (2.3 us)
 *     blur + unroll/hoist 75 instrs:  106 k clones/s   (9.4 us)
 *     pbr/full          152 instrs:    46 k clones/s  (21.9 us)
 *     uber/car_chase    488 instrs:    13 k clones/s  (76.6 us)
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "glsl/frontend.h"
#include "ir/ir.h"
#include "lower/lower.h"
#include "passes/passes.h"

using namespace gsopt;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Probe
{
    const char *label;
    std::unique_ptr<ir::Module> module;
    double seedClonesPerSec; ///< measured on the heap-backed seed
};

std::unique_ptr<ir::Module>
lowered(const char *name, bool unrollHoist)
{
    const corpus::CorpusShader &s = *corpus::findShader(name);
    glsl::CompiledShader cs = glsl::compileShader(s.source, s.defines);
    auto m = lower::lowerShader(cs);
    if (unrollHoist) {
        passes::OptFlags f;
        f.unroll = true;
        f.hoist = true;
        passes::optimize(*m, f);
    } else {
        passes::canonicalize(*m);
    }
    return m;
}

} // namespace

int
main()
{
    bench::banner("micro_ir",
                  "Arena-backed Module clone/destroy throughput vs the "
                  "heap-backed seed");

    std::vector<Probe> probes;
    probes.push_back({"simple/grayscale",
                      lowered("simple/grayscale", false), 883e3});
    probes.push_back(
        {"blur/weighted9", lowered("blur/weighted9", false), 441e3});
    probes.push_back({"blur/weighted9 +unroll+hoist",
                      lowered("blur/weighted9", true), 106e3});
    probes.push_back({"pbr/full", lowered("pbr/full", false), 46e3});
    probes.push_back(
        {"uber/car_chase", lowered("uber/car_chase", false), 13e3});

    std::printf("%-30s %7s %9s %11s %9s %9s %8s\n", "module", "instrs",
                "bytes", "clones/s", "us/clone", "us/destroy",
                "vs seed");
    for (const Probe &p : probes) {
        const ir::Module &m = *p.module;
        // Pick a repetition count that keeps each probe ~50 ms. The
        // clone is destroyed before the next begins — the same protocol
        // the seed numbers were captured with, and the cache-resident
        // shape the flag tree's clone-apply-drop edges have.
        const int reps = std::max(
            256, static_cast<int>(2'000'000 /
                                  std::max<size_t>(
                                      1, m.instructionCount())));
        const int batch = 1;

        double clone_ms = 1e300, destroy_ms = 1e300;
        for (int trial = 0; trial < 3; ++trial) {
            double trial_clone = 0, trial_destroy = 0;
            std::vector<std::unique_ptr<ir::Module>> clones;
            clones.reserve(batch);
            for (int done = 0; done < reps; done += batch) {
                const int n = std::min(batch, reps - done);
                double t0 = nowMs();
                for (int r = 0; r < n; ++r)
                    clones.push_back(m.clone());
                double t1 = nowMs();
                clones.clear();
                trial_clone += t1 - t0;
                trial_destroy += nowMs() - t1;
            }
            clone_ms = std::min(clone_ms, trial_clone);
            destroy_ms = std::min(destroy_ms, trial_destroy);
        }

        const double total_ms = clone_ms + destroy_ms;
        const double per_sec = reps / total_ms * 1000.0;
        std::printf("%-30s %7zu %9zu %11.0f %9.2f %9.2f %7.1fx\n",
                    p.label, m.instructionCount(), m.arenaBytes(),
                    per_sec, clone_ms * 1000.0 / reps,
                    destroy_ms * 1000.0 / reps,
                    per_sec / p.seedClonesPerSec);
    }

    std::printf("\n(seed column: heap-backed IR at commit 6f21584; "
                "clone+destroy combined.)\n");
    return 0;
}
