/**
 * @file
 * Ablation (not a paper figure): how much of the paper's cross-platform
 * story depends on each mechanism in the driver models?
 *
 * For a probe set of corpus shaders this compares the isolated Unroll
 * and Hoist impact under three driver configurations:
 *
 *   full      — the calibrated model (JIT pass set + heuristic budgets
 *               + pressure scheduler);
 *   no-jit    — the vendor JIT applies no optional passes at all
 *               (canonicalise only): offline flags get full credit
 *               everywhere, erasing the NVIDIA/Intel near-zero rows;
 *   no-sched  — the back-end pressure scheduler is disabled by setting
 *               its window to infinity: offline reassociation's long
 *               reduction chains inflate register pressure.
 *
 * The point: the near-zero violins on strong-JIT platforms and the
 * bounded loss tails are *consequences of modelled mechanisms*, not
 * hand-tuned outputs.
 */
#include <cstdio>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "emit/offline.h"
#include "glsl/frontend.h"
#include "runtime/framework.h"
#include "tuner/flags.h"

using namespace gsopt;

namespace {

const char *kProbes[] = {
    "blur/weighted9", "blur/gauss13", "godrays/march32",
    "ssao/kernel16", "tier/dual_heavy", "toon/bands3",
};

double
isolated(const corpus::CorpusShader &shader, const gpu::DeviceModel &dev,
         tuner::FlagSet flags)
{
    std::string base = emit::optimizeShaderSource(
        shader.source, tuner::FlagSet::none().toOptFlags(),
        shader.defines);
    std::string with = emit::optimizeShaderSource(
        shader.source, flags.toOptFlags(), shader.defines);
    auto t_base = runtime::measureShader(base, dev, shader.name + "/b");
    auto t_with = runtime::measureShader(with, dev, shader.name + "/w");
    return runtime::speedupPercent(t_base, t_with);
}

gpu::DeviceModel
noJit(gpu::DeviceModel d)
{
    d.jitFlags = passes::OptFlags{};
    d.jitUnrollTrips = 0;
    d.jitHoistArmInstrs = 0;
    return d;
}

gpu::DeviceModel
noSched(gpu::DeviceModel d)
{
    d.schedulerWindow = static_cast<size_t>(1) << 30;
    return d;
}

} // namespace

int
main()
{
    bench::banner("Ablation",
                  "Driver-model mechanisms: isolated Unroll/Hoist "
                  "impact under full / no-JIT / no-scheduler models");

    for (gpu::DeviceId id :
         {gpu::DeviceId::Nvidia, gpu::DeviceId::Arm}) {
        const gpu::DeviceModel &full = gpu::deviceModel(id);
        gpu::DeviceModel nj = noJit(full);
        gpu::DeviceModel ns = noSched(full);
        std::printf("---- %s ----\n", full.vendor.c_str());
        TextTable t({"shader", "flag", "full model", "no JIT passes",
                     "no scheduler"});
        struct Probe
        {
            const char *label;
            tuner::FlagSet flags;
        };
        const Probe probes[] = {
            {"Unroll", tuner::FlagSet::none().with(tuner::kUnroll)},
            {"Hoist", tuner::FlagSet::none().with(tuner::kHoist)},
            {"Unroll+FPReassoc",
             tuner::FlagSet::none()
                 .with(tuner::kUnroll)
                 .with(tuner::kFpReassociate)},
        };
        for (const char *name : kProbes) {
            const corpus::CorpusShader *s = corpus::findShader(name);
            for (const Probe &p : probes) {
                t.addRow({name, p.label,
                          TextTable::num(isolated(*s, full, p.flags),
                                         2) +
                              "%",
                          TextTable::num(isolated(*s, nj, p.flags), 2) +
                              "%",
                          TextTable::num(isolated(*s, ns, p.flags), 2) +
                              "%"});
            }
        }
        std::printf("%s\n", t.str().c_str());
    }

    std::printf(
        "Reading: with the JIT ablated, NVIDIA's near-zero rows become "
        "large positives\n(the offline flags take credit the real "
        "driver would have claimed) — that\nmechanism alone produces "
        "the paper's strong-JIT-platform violins. With the\nscheduler "
        "ablated, the Unroll+FPReassoc rows shift on the "
        "pressure-sensitive Mali\n(reassociated reduction chains "
        "change register pressure in both the baseline\nand the "
        "optimised code), showing measured deltas depend on the "
        "scheduling model.\n");
    return 0;
}
