/**
 * @file
 * Shared helpers for the per-figure bench binaries: consistent headers,
 * device iteration, and access to the cached experiment campaign.
 *
 * Every binary regenerates one table or figure of the paper and prints
 * the same rows/series the paper reports. The first binary run pays for
 * the measurement campaign (~4 s on one core since the compile-once
 * exploration refactor; ~15 s before it — see bench/micro_explore.cpp
 * and bench/micro_campaign.cpp for the trajectory; GSOPT_THREADS
 * controls the worker pool); the results are cached as per-shader
 * shards under ./experiment_cache/ for all subsequent runs.
 */
#ifndef GSOPT_BENCH_BENCH_COMMON_H
#define GSOPT_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <string>

#include "gpu/device.h"
#include "support/stats.h"
#include "support/table.h"
#include "tuner/experiment.h"

namespace gsopt::bench {

inline void
banner(const char *figure, const char *what)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s — %s\n", figure, what);
    std::printf("Reproduction of: Crawford & O'Boyle, \"A Cross-platform "
                "Evaluation of Graphics\nShader Compiler Optimization\", "
                "ISPASS 2018.\n");
    std::printf("==================================================="
                "=========================\n\n");
}

inline const tuner::ExperimentEngine &
engine()
{
    std::printf("[campaign] loading or running the full measurement "
                "campaign...\n");
    const auto &e = tuner::ExperimentEngine::instance();
    std::printf("[campaign] %zu shaders x %llu flag combinations x %zu "
                "devices ready\n\n",
                e.results().size(),
                static_cast<unsigned long long>(tuner::comboCount()),
                gpu::allDevices().size());
    return e;
}

} // namespace gsopt::bench

#endif // GSOPT_BENCH_BENCH_COMMON_H
