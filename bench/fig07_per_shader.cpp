/**
 * @file
 * Fig 7 reproduction: per-shader speed-up distributions per platform —
 * best possible (green in the paper), default LunarGlass settings
 * (red), and the best static flags (blue).
 */
#include <algorithm>

#include "bench_common.h"

using namespace gsopt;

namespace {

void
printSeries(const char *label, std::vector<double> series)
{
    std::sort(series.begin(), series.end(), std::greater<double>());
    Summary s = summarize(series);
    std::printf("  %-12s %s\n", label, s.str().c_str());
    // The paper plots shaders sorted by speed-up; print a compact
    // sparkline-style row of deciles.
    std::printf("  %-12s deciles:", "");
    for (int d = 0; d <= 10; ++d) {
        size_t i = std::min(series.size() - 1,
                            static_cast<size_t>(
                                d * (series.size() - 1) / 10));
        std::printf(" %+7.2f", series[i]);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Figure 7",
                  "Percentage speed-up per shader for each platform "
                  "(best possible / LunarGlass defaults / best static)");
    const auto &eng = bench::engine();

    for (gpu::DeviceId dev : gpu::allDevices()) {
        std::printf("---- %s (%s) ----\n", gpu::deviceVendor(dev),
                    gpu::deviceModel(dev).name.c_str());
        printSeries("best", eng.perShaderBestSpeedups(dev));
        printSeries("defaults",
                    eng.perShaderSpeedups(
                        dev, tuner::FlagSet::lunarGlassDefaults()));
        printSeries("best static",
                    eng.perShaderSpeedups(dev,
                                          eng.bestStaticFlags(dev)));
        std::printf("\n");
    }
    std::printf("Paper reading: large near-zero mid-sections, peaks and "
                "troughs of 10-30%% at the\nends; on AMD the defaults "
                "hug the best line; on ARM/NVIDIA the gap between\n"
                "best-static and best is widest (better per-shader flag "
                "selection pays there).\n");
    return 0;
}
