/**
 * @file
 * Phase-ordering study: does pass *order* buy measurable speed-up
 * beyond the best flag subset? For each probe shader the full 11-pass
 * catalog is registered, the flag lattice is explored exhaustively,
 * and per device two optima are compared: the exhaustive best flag
 * subset (canonical order — the strongest result the paper's lattice
 * can express) against the best ordered plan SequenceSearch finds
 * through a shared PlanExplorer.
 *
 * The second headline is the cost side: every ordered plan walked on
 * one shader shares one content-addressed PlanApplier memo across all
 * five devices, so executed pass runs stay far below the walked-plan
 * step count (ExploreCounters::plansWalked / passRuns deltas printed
 * at the end).
 *
 * Acceptance: at least one (shader, device) pair where the best
 * ordering strictly beats the best flag subset, and memoization holds
 * executed pass runs below the walked plan-step total.
 *
 * Pass --full to run the entire corpus instead of the probe set.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "passes/registry.h"
#include "tuner/explore.h"
#include "tuner/search.h"

using namespace gsopt;

int
main(int argc, char **argv)
{
    const bool full =
        argc > 1 && std::strcmp(argv[1], "--full") == 0;

    bench::banner("micro_order",
                  "Best ordered pass plan vs best flag subset per "
                  "(shader, device), N=11");

    // The ordering dimension only exists beyond the paper's eight:
    // licm / strength_reduce / tex_batch open the plans the lattice
    // cannot express.
    passes::ScopedExtraPasses extras;

    std::vector<const corpus::CorpusShader *> probe;
    if (full) {
        for (const auto &s : corpus::corpus())
            probe.push_back(&s);
    } else {
        for (const char *name :
             {"godrays/march64_spectral", "godrays/march32",
              "blur/weighted9", "ssao/kernel16", "composite/hdr_fog",
              "tonemap/aces"}) {
            probe.push_back(corpus::findShader(name));
        }
    }

    tuner::ExploreCounters &counters = tuner::exploreCounters();

    TextTable t({"shader", "device", "best subset", "best plan",
                 "delta", "winning plan"});
    size_t ordering_wins = 0;
    uint64_t plans_walked = 0;
    uint64_t plan_pass_runs = 0;
    uint64_t plan_memo_hits = 0;

    for (const corpus::CorpusShader *shader : probe) {
        tuner::Exploration ex = tuner::exploreShader(*shader);
        tuner::PlanExplorer planner(*shader, ex);

        // Everything from here is plan work: exploration and lowering
        // are already paid for above.
        const uint64_t walked0 = counters.plansWalked;
        const uint64_t runs0 = counters.passRuns;
        const uint64_t hits0 = counters.passMemoHits;

        for (gpu::DeviceId id : gpu::allDevices()) {
            const gpu::DeviceModel &device = gpu::deviceModel(id);

            tuner::MeasurementOracle lattice_oracle(ex, device);
            const double best_subset =
                tuner::ExhaustiveSearch{}
                    .run(lattice_oracle)
                    .bestSpeedupPercent;

            // One planner serves all five devices: plans already
            // walked for an earlier device are cache hits here.
            tuner::MeasurementOracle plan_oracle(ex, device,
                                                 &planner);
            const tuner::SearchOutcome seq =
                tuner::SequenceSearch(16).run(plan_oracle);
            const double best_plan = std::max(
                best_subset, seq.bestSpeedupPercent);

            const double delta = seq.bestSpeedupPercent - best_subset;
            const bool win =
                delta > 0.05 && !seq.bestPlan.isCanonical();
            ordering_wins += win;
            t.addRow({shader->name, gpu::deviceVendor(id),
                      TextTable::num(best_subset, 2) + " %",
                      TextTable::num(best_plan, 2) + " %",
                      (delta >= 0 ? "+" : "") +
                          TextTable::num(delta, 2) + " pp" +
                          (win ? " *" : ""),
                      win ? seq.bestPlan.str() : "-"});
        }

        plans_walked += counters.plansWalked - walked0;
        plan_pass_runs += counters.passRuns - runs0;
        plan_memo_hits += counters.passMemoHits - hits0;
    }

    std::printf("%s\n", t.str().c_str());
    std::printf("Probe set: %zu shaders x %zu devices%s, "
                "N=%zu registered passes\n",
                probe.size(), gpu::allDevices().size(),
                full ? " (full corpus)" : "",
                passes::PassRegistry::instance().count());
    std::printf("Plan exploration cost: %llu plans walked, %llu pass "
                "runs executed, %llu memo hits\n",
                static_cast<unsigned long long>(plans_walked),
                static_cast<unsigned long long>(plan_pass_runs),
                static_cast<unsigned long long>(plan_memo_hits));

    // Memoization bar: every walked plan step is exactly one pass run
    // or one memo hit, so runs/(runs+hits) is the executed fraction —
    // an unmemoized applier would sit at 100%. Prefix sharing and
    // cross-order convergence must keep it under half.
    const uint64_t plan_steps = plan_pass_runs + plan_memo_hits;
    const bool memo_ok =
        plan_steps > 0 && plan_pass_runs * 2 < plan_steps;
    const bool ok = ordering_wins >= 1 && memo_ok;
    std::printf(
        "Acceptance (>=1 ordering win beyond the flag lattice, "
        "executed pass runs\nwell below walked plan steps): %s  "
        "(%zu wins, %llu/%llu steps executed = %.0f%%)\n",
        ok ? "PASS" : "FAIL", ordering_wins,
        static_cast<unsigned long long>(plan_pass_runs),
        static_cast<unsigned long long>(plan_steps),
        plan_steps ? 100.0 * static_cast<double>(plan_pass_runs) /
                         static_cast<double>(plan_steps)
                   : 0.0);
    return ok ? 0 : 1;
}
