/**
 * @file
 * Search-strategy efficiency: measurements-to-within-1%-of-optimum per
 * strategy per device — the budget-curve question behind the paper's
 * Fig 5 ("iterative" beats every static set, but at what measurement
 * cost?), asked of every strategy in the roster including the
 * model-guided ones (predicted, transfer).
 *
 * For each (shader, device, strategy) run, the budget curve
 * (SearchOutcome::bestByBudget) is scanned for the first paid
 * measurement after which the best-found speed-up is within 1
 * percentage point of the exhaustive optimum. Reported per strategy x
 * device: mean and max measurements-to-1%, runs that never got there,
 * and the mean shortfall from the optimum at the final budget.
 *
 * The acceptance bar printed at the end checks that the predicted
 * strategy reaches within 1 pp of the exhaustive optimum on every
 * device for every probe shader while paying at most 8 measurements.
 *
 * Pass --full to run the entire corpus instead of the probe set.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "tuner/search.h"

using namespace gsopt;

namespace {

struct Cell
{
    size_t runs = 0;
    size_t misses = 0;        ///< runs that never reached 1 pp
    size_t measurementsSum = 0; ///< to-1% where reached, else total
    size_t measurementsMax = 0;
    double shortfallSum = 0;  ///< optimum - best found, final budget
};

/** First 1-based paid-measurement count after which the curve is
 * within 1 pp of @p optimum; 0 when the run starts there (a free or
 * predicted hit), SIZE_MAX when it never arrives. */
size_t
measurementsToWithin1pp(const tuner::SearchOutcome &out,
                        double optimum)
{
    if (out.bestByBudget.empty())
        return out.bestSpeedupPercent >= optimum - 1.0 ? 0 : SIZE_MAX;
    for (size_t i = 0; i < out.bestByBudget.size(); ++i) {
        if (out.bestByBudget[i] >= optimum - 1.0)
            return i + 1;
    }
    return SIZE_MAX;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool full =
        argc > 1 && std::strcmp(argv[1], "--full") == 0;

    bench::banner("micro_search",
                  "Measurements-to-within-1%-of-optimum per search "
                  "strategy per device");

    std::vector<const corpus::CorpusShader *> probe;
    if (full) {
        for (const auto &s : corpus::corpus())
            probe.push_back(&s);
    } else {
        for (const char *name :
             {"blur/weighted9", "simple/grayscale", "tonemap/aces",
              "toon/bands3", "deferred/lights4", "pbr/full",
              "fxaa/high", "godrays/march32", "ssao/kernel16",
              "uber/car_chase"}) {
            probe.push_back(corpus::findShader(name));
        }
    }

    auto prior = std::make_shared<const tuner::FamilyPrior>(
        bench::engine().familyPrior());
    const auto strategies =
        tuner::defaultStrategies(/*randomBudget=*/16,
                                 /*randomSeed=*/0x5eed, prior);

    // strategy name -> device -> aggregate
    std::map<std::string, std::map<gpu::DeviceId, Cell>> cells;
    bool predicted_ok = true;
    double predicted_worst_gap = 0;
    size_t predicted_max_meas = 0;

    for (const corpus::CorpusShader *shader : probe) {
        tuner::Exploration ex = tuner::exploreShader(*shader);
        for (gpu::DeviceId id : gpu::allDevices()) {
            const gpu::DeviceModel &device = gpu::deviceModel(id);
            tuner::MeasurementOracle exhaustive_oracle(ex, device);
            const double optimum =
                tuner::ExhaustiveSearch{}
                    .run(exhaustive_oracle)
                    .bestSpeedupPercent;

            for (const auto &strategy : strategies) {
                tuner::MeasurementOracle oracle(ex, device);
                tuner::SearchOutcome out = strategy->run(oracle);
                Cell &c = cells[strategy->name()][id];
                ++c.runs;
                const size_t to1 =
                    measurementsToWithin1pp(out, optimum);
                if (to1 == SIZE_MAX) {
                    ++c.misses;
                    c.measurementsSum += out.measurementsUsed;
                } else {
                    c.measurementsSum += to1;
                }
                c.measurementsMax = std::max(c.measurementsMax,
                                             out.measurementsUsed);
                c.shortfallSum +=
                    optimum - out.bestSpeedupPercent;

                if (strategy->name() == "predicted") {
                    const double gap =
                        optimum - out.bestSpeedupPercent;
                    predicted_worst_gap =
                        std::max(predicted_worst_gap, gap);
                    predicted_max_meas = std::max(
                        predicted_max_meas, out.measurementsUsed);
                    if (gap > 1.0 || out.measurementsUsed > 8)
                        predicted_ok = false;
                }
            }
        }
    }

    TextTable t({"strategy", "device", "mean meas to 1%",
                 "max meas", "missed 1%", "mean shortfall"});
    for (const auto &[name, by_dev] : cells) {
        for (const auto &[id, c] : by_dev) {
            t.addRow({name, gpu::deviceVendor(id),
                      TextTable::num(
                          static_cast<double>(c.measurementsSum) /
                              static_cast<double>(c.runs),
                          1),
                      std::to_string(c.measurementsMax),
                      std::to_string(c.misses) + "/" +
                          std::to_string(c.runs),
                      TextTable::num(c.shortfallSum /
                                         static_cast<double>(c.runs),
                                     2) +
                          " pp"});
        }
    }
    std::printf("%s\n", t.str().c_str());

    std::printf("Probe set: %zu shaders x %zu devices%s\n",
                probe.size(), gpu::allDevices().size(),
                full ? " (full corpus)" : "");
    std::printf(
        "Acceptance (predicted within 1 pp of exhaustive optimum on "
        "every device,\n<= 8 measurements per shader): %s  "
        "(worst gap %.2f pp, max measurements %zu)\n",
        predicted_ok ? "PASS" : "FAIL", predicted_worst_gap,
        predicted_max_meas);
    return predicted_ok ? 0 : 1;
}
