/**
 * @file
 * Perf trajectory for the compile-once exploration pipeline. Runs the
 * same campaign two ways over a probe set of corpus shaders:
 *
 *   legacy — the pre-refactor path: a full front end (preprocess, lex,
 *            parse, sema, lower) for every one of the 256 flag
 *            combinations, every variant printed, and the driver
 *            compile cache defeated so every measurement pays a cold
 *            vendor compile (exactly what the seed code did);
 *   new    — tuner::exploreShader (front end once, passes on clones,
 *            fingerprint dedup before the printer) plus the
 *            content-addressed driver cache.
 *
 * It prints per-phase wall-clock (front end / lower / passes /
 * fingerprint / print / driver compile / measurement), the campaign
 * totals, the interpreter microbenchmark (slot-indexed engine vs the
 * map-based reference), the measurement/verify phase (scalar
 * per-probe interprets vs one batched 16-lane run per distinct
 * variant — see bench/micro_interp.cpp for the full width sweep), and
 * the registry-growth section: exploration
 * cost at N=8 vs N=11 (the full extra-pass catalog registered), where
 * the memoized flag tree must keep *executed* pass runs under 2x the
 * N=8 figure despite walking an 8x larger combination space. Future
 * perf PRs report against these numbers. Pass --full to run the
 * entire corpus instead of the probe set.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include <unordered_set>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "emit/offline.h"
#include "glsl/frontend.h"
#include "gpu/driver.h"
#include "ir/interp.h"
#include "ir/interp_batch.h"
#include "lower/lower.h"
#include "passes/passes.h"
#include "passes/registry.h"
#include "runtime/framework.h"
#include "support/rng.h"
#include "tuner/explore.h"

using namespace gsopt;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The seed's exploreShader: full front end per combo, dedup on text. */
tuner::Exploration
exploreShaderLegacy(const corpus::CorpusShader &shader)
{
    tuner::Exploration ex;
    ex.shaderName = shader.name;
    ex.originalSource = shader.source;
    {
        glsl::CompiledShader cs =
            glsl::compileShader(shader.source, shader.defines);
        ex.preprocessedOriginal = cs.preprocessedText;
    }
    std::unordered_map<uint64_t, int> by_hash;
    for (const tuner::FlagSet &flags : tuner::allFlagSets()) {
        std::string text = emit::optimizeShaderSource(
            shader.source, flags.toOptFlags(), shader.defines);
        const uint64_t hash = fnv1a(text);
        auto it = by_hash.find(hash);
        int index;
        if (it == by_hash.end()) {
            index = static_cast<int>(ex.variants.size());
            by_hash.emplace(hash, index);
            tuner::Variant v;
            v.source = std::move(text);
            v.sourceHash = hash;
            ex.variants.push_back(std::move(v));
        } else {
            index = it->second;
        }
        ex.variants[static_cast<size_t>(index)].producers.push_back(
            flags);
        ex.variantOfCombo.emplace(flags.bits, index);
    }
    ex.exploredFlagCount = tuner::flagCount();
    ex.passthroughVariant = ex.variantOf(tuner::FlagSet::none());
    return ex;
}

struct CampaignTiming
{
    double exploreMs = 0;
    double measureMs = 0;
    double totalMs() const { return exploreMs + measureMs; }
    size_t variants = 0;
    size_t measurements = 0;
};

/** Measure one explored shader on every device (the engine's inner
 * loop). @p defeatCache reproduces the pre-refactor cost model: every
 * measurement recompiles its text from scratch. */
double
measureAll(const tuner::Exploration &ex, bool defeatCache,
           size_t &measurements)
{
    const double t0 = nowMs();
    for (gpu::DeviceId id : gpu::allDevices()) {
        const gpu::DeviceModel &device = gpu::deviceModel(id);
        if (defeatCache)
            gpu::clearDriverCache();
        runtime::measureShader(ex.preprocessedOriginal, device,
                               ex.shaderName + "/original");
        ++measurements;
        for (size_t v = 0; v < ex.variants.size(); ++v) {
            if (defeatCache)
                gpu::clearDriverCache();
            runtime::measureShader(ex.variants[v].source, device,
                                   ex.shaderName + "/v" +
                                       std::to_string(v));
            ++measurements;
        }
    }
    return nowMs() - t0;
}

void
interpreterMicrobench()
{
    const corpus::CorpusShader &s =
        *corpus::findShader("uber/car_chase");
    glsl::CompiledShader cs = glsl::compileShader(s.source, s.defines);
    auto module = lower::lowerShader(cs);
    passes::canonicalize(*module);
    ir::InterpEnv env = runtime::defaultEnvironment(cs.interface);

    // Warm up + pick a rep count that keeps the bench quick.
    const int reps = 200;
    auto time_engine = [&](auto &&run) {
        double best = 1e300;
        for (int trial = 0; trial < 3; ++trial) {
            const double t0 = nowMs();
            for (int r = 0; r < reps; ++r)
                run();
            best = std::min(best, nowMs() - t0);
        }
        return best;
    };

    double slot_ms = time_engine(
        [&] { ir::interpret(*module, env); });
    double map_ms = time_engine(
        [&] { ir::interpretReference(*module, env); });

    std::printf("Interpreter microbenchmark (uber/car_chase, %d runs, "
                "best of 3):\n",
                reps);
    std::printf("  map-based reference : %8.2f ms  (%.1f us/run)\n",
                map_ms, map_ms * 1000.0 / reps);
    std::printf("  slot-indexed engine : %8.2f ms  (%.1f us/run)\n",
                slot_ms, slot_ms * 1000.0 / reps);
    std::printf("  speedup             : %8.2fx  (target >= 5x)\n\n",
                map_ms / slot_ms);
}

/**
 * The measurement/verify phase: functionally probing every distinct
 * optimised variant of every probe shader against 16 environments —
 * what the fuzz walk and the campaign's functional checks do in bulk.
 * Times the scalar way (16 ir::interpret calls per variant) against
 * one 16-lane batched run per variant over the same memoized flag-tree
 * walk.
 */
void
verifyPhase(const std::vector<corpus::CorpusShader> &probe)
{
    constexpr size_t kProbes = 16;
    double scalarMs = 0, batchMs = 0;
    size_t variants = 0;
    for (const auto &s : probe) {
        glsl::CompiledShader cs =
            glsl::compileShader(s.source, s.defines);
        auto base = lower::lowerShader(cs);

        ir::BatchEnv benv = ir::BatchEnv::broadcast(
            runtime::defaultEnvironmentCached(cs.interface), kProbes);
        for (size_t l = 1; l < kProbes; ++l) {
            const double p =
                static_cast<double>(l) / (kProbes - 1);
            for (auto &[name, in] : benv.inputs) {
                ir::LaneVector v(in.comps);
                for (size_t c = 0; c < in.comps; ++c)
                    v[c] = 0.1 + 0.8 * p +
                           0.05 * static_cast<double>(c);
                benv.setLaneInput(name, l, v);
            }
        }
        std::vector<ir::InterpEnv> envs;
        for (size_t l = 0; l < kProbes; ++l)
            envs.push_back(benv.laneEnv(l));

        std::unordered_set<uint64_t> seen;
        passes::forEachFlagCombination(
            *base, [&](const passes::OptFlags &, const ir::Module &m,
                       uint64_t fp) {
                if (!seen.insert(fp).second)
                    return;
                ++variants;
                double t0 = nowMs();
                for (const ir::InterpEnv &env : envs)
                    ir::interpret(m, env);
                scalarMs += nowMs() - t0;
                t0 = nowMs();
                ir::interpretBatch(m, benv);
                batchMs += nowMs() - t0;
            });
    }
    std::printf("Measurement/verify phase (%zu distinct variants x %zu "
                "probe envs):\n",
                variants, kProbes);
    std::printf("  scalar (16 interprets/variant) : %9.1f ms\n",
                scalarMs);
    std::printf("  batched (one 16-lane run)      : %9.1f ms\n",
                batchMs);
    std::printf("  speedup                        : %9.2fx\n\n",
                batchMs > 0 ? scalarMs / batchMs : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const bool full =
        argc > 1 && std::strcmp(argv[1], "--full") == 0;

    bench::banner("micro_explore",
                  "Campaign per-phase timing: compile-once exploration "
                  "+ driver cache vs the legacy pipeline");

    interpreterMicrobench();

    std::vector<corpus::CorpusShader> probe;
    if (full) {
        probe = corpus::corpus();
    } else {
        for (const char *name :
             {"blur/weighted9", "simple/grayscale", "tonemap/aces",
              "toon/bands3", "deferred/lights4", "pbr/full",
              "fxaa/high", "godrays/march32", "ssao/kernel16",
              "uber/car_chase"}) {
            probe.push_back(*corpus::findShader(name));
        }
    }
    std::printf("Probe set: %zu shaders x %llu combos x %zu devices%s\n\n",
                probe.size(),
                static_cast<unsigned long long>(tuner::comboCount()),
                gpu::allDevices().size(),
                full ? " (full corpus)" : "");

    // ---- legacy path ---------------------------------------------------
    CampaignTiming legacy;
    for (const auto &s : probe) {
        const double t0 = nowMs();
        tuner::Exploration ex = exploreShaderLegacy(s);
        legacy.exploreMs += nowMs() - t0;
        legacy.variants += ex.uniqueCount();
        legacy.measureMs +=
            measureAll(ex, /*defeatCache=*/true, legacy.measurements);
    }

    // ---- new path ------------------------------------------------------
    gpu::clearDriverCache();
    tuner::exploreCounters().reset();
    CampaignTiming fresh;
    for (const auto &s : probe) {
        const double t0 = nowMs();
        tuner::Exploration ex = tuner::exploreShader(s);
        fresh.exploreMs += nowMs() - t0;
        fresh.variants += ex.uniqueCount();
        fresh.measureMs +=
            measureAll(ex, /*defeatCache=*/false, fresh.measurements);
    }
    const tuner::ExploreCounters &c = tuner::exploreCounters();
    const gpu::DriverCacheStats cache = gpu::driverCacheStats();

    auto ms = [](uint64_t ns) {
        return static_cast<double>(ns) / 1e6;
    };
    std::printf("New-path exploration phases (%zu shaders):\n",
                probe.size());
    std::printf("  front end   : %9.1f ms  (%llu runs)\n",
                ms(c.frontEndNs),
                static_cast<unsigned long long>(c.frontEndRuns.load()));
    std::printf("  lowering    : %9.1f ms  (%llu runs)\n", ms(c.lowerNs),
                static_cast<unsigned long long>(c.lowerRuns.load()));
    std::printf("  pass runs   : %9.1f ms  (%llu combos; %llu passes "
                "executed, %llu memo-shared)\n",
                ms(c.pipelineNs),
                static_cast<unsigned long long>(c.pipelineRuns.load()),
                static_cast<unsigned long long>(c.passRuns.load()),
                static_cast<unsigned long long>(c.passMemoHits.load()));
    std::printf("  fingerprint : %9.1f ms  (%llu computed, %llu dedup "
                "hits)\n",
                ms(c.fingerprintNs),
                static_cast<unsigned long long>(
                    c.fingerprintRuns.load()),
                static_cast<unsigned long long>(
                    c.fingerprintHits.load()));
    std::printf("  print       : %9.1f ms  (%llu runs)\n", ms(c.printNs),
                static_cast<unsigned long long>(c.printRuns.load()));
    std::printf("  arena       : %9.1f MB of IR across all tree "
                "modules\n",
                static_cast<double>(c.arenaBytes.load()) / 1e6);
    std::printf("Driver cache: %llu hits / %llu misses, %9.1f ms "
                "compiling\n\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                ms(cache.compileNs));

    verifyPhase(probe);

    std::printf("Campaign wall-clock summary:\n");
    std::printf("  %-28s %12s %12s %12s\n", "", "explore", "measure",
                "total");
    std::printf("  %-28s %9.1f ms %9.1f ms %9.1f ms\n",
                "legacy (recompile always)", legacy.exploreMs,
                legacy.measureMs, legacy.totalMs());
    std::printf("  %-28s %9.1f ms %9.1f ms %9.1f ms\n",
                "compile-once + cache", fresh.exploreMs, fresh.measureMs,
                fresh.totalMs());
    std::printf("  %-28s %9.2fx %11.2fx %11.2fx  (target >= 3x total)\n",
                "speedup", legacy.exploreMs / fresh.exploreMs,
                legacy.measureMs / fresh.measureMs,
                legacy.totalMs() / fresh.totalMs());
    if (legacy.variants != fresh.variants) {
        std::printf("  WARNING: variant partitions differ (legacy %zu, "
                    "new %zu)\n",
                    legacy.variants, fresh.variants);
    }

    // ---- registry growth: walked vs executed at N=8 and N=11 -----------
    // Each registered pass doubles the walked space; the memoized tree
    // executes one run per *distinct* (incoming-IR, pass) edge, so a
    // pass that fires on little IR must cost little regardless of N.
    struct GrowthRow
    {
        size_t flags = 0;
        uint64_t walked = 0;
        uint64_t executed = 0;
        uint64_t memoHits = 0;
        size_t variants = 0;
        double exploreMs = 0;
    };
    auto explore_probe = [&probe](GrowthRow &row) {
        tuner::ExploreCounters &c = tuner::exploreCounters();
        const uint64_t pass0 = c.passRuns.load();
        const uint64_t combos0 = c.pipelineRuns.load();
        const uint64_t memo0 = c.passMemoHits.load();
        const double t0 = nowMs();
        for (const auto &s : probe)
            row.variants += tuner::exploreShader(s).uniqueCount();
        row.exploreMs = nowMs() - t0;
        row.flags = tuner::flagCount();
        row.walked = c.pipelineRuns.load() - combos0;
        row.executed = c.passRuns.load() - pass0;
        row.memoHits = c.passMemoHits.load() - memo0;
    };

    // The baseline must really be the paper's 8-pass space: with
    // GSOPT_EXTRA_PASSES set the registry is already wide and the two
    // rows would compare identical runs, vacuously "meeting" the
    // target.
    if (tuner::flagCount() > 8) {
        std::printf("\nRegistry growth section skipped: %zu passes "
                    "already registered (unset GSOPT_EXTRA_PASSES "
                    "for the N=8 vs N=11 comparison)\n",
                    tuner::flagCount());
        return 0;
    }
    GrowthRow base;
    explore_probe(base);
    GrowthRow wide;
    {
        passes::ScopedExtraPasses extras;
        explore_probe(wide);
    }

    std::printf("\nRegistry growth (%zu shaders; catalog passes: "
                "licm, strength_reduce, tex_batch):\n",
                probe.size());
    std::printf("  %-10s %10s %12s %12s %10s %12s\n", "space",
                "walked", "executed", "memo-shared", "variants",
                "explore");
    auto print_row = [](const char *label, const GrowthRow &r) {
        std::printf("  N=%-8zu %10llu %12llu %12llu %10zu %9.1f ms\n",
                    r.flags,
                    static_cast<unsigned long long>(r.walked),
                    static_cast<unsigned long long>(r.executed),
                    static_cast<unsigned long long>(r.memoHits),
                    r.variants, r.exploreMs);
        (void)label;
    };
    print_row("base", base);
    print_row("wide", wide);
    const double executed_ratio =
        base.executed
            ? static_cast<double>(wide.executed) /
                  static_cast<double>(base.executed)
            : 0.0;
    std::printf("  executed-pass-run growth: %.2fx for a %.0fx walked "
                "space  (target < 2x)\n",
                executed_ratio,
                base.walked
                    ? static_cast<double>(wide.walked) /
                          static_cast<double>(base.walked)
                    : 0.0);
    return 0;
}
