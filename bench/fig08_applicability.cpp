/**
 * @file
 * Fig 8 reproduction: per-flag applicability — of all shaders (blue in
 * the paper), how many does each flag change the output code for
 * (red), and for how many is the flag in the optimal set (green: the
 * flag appears in at least half of the optimal 10% of variants).
 */
#include <algorithm>

#include "bench_common.h"

using namespace gsopt;

int
main()
{
    bench::banner("Figure 8",
                  "Fractions of shaders where each optimization pass "
                  "applies and has a positive impact");
    const auto &eng = bench::engine();
    const size_t total = eng.results().size();

    TextTable t({"Flag", "total", "changes output",
                 "in optimal set (any device)"});
    for (int bit = 0; bit < static_cast<int>(tuner::flagCount()); ++bit) {
        size_t changes = 0, optimal = 0;
        for (const auto &r : eng.results()) {
            if (r.exploration.flagChangesOutput(bit))
                ++changes;
            // "Optimal": the flag is set in at least half of the best
            // 10% of variants on at least one device.
            bool in_optimal = false;
            for (gpu::DeviceId dev : gpu::allDevices()) {
                const auto &m = r.byDevice.at(dev);
                std::vector<size_t> order(
                    r.exploration.variants.size());
                for (size_t i = 0; i < order.size(); ++i)
                    order[i] = i;
                std::sort(order.begin(), order.end(),
                          [&](size_t a, size_t b) {
                              return m.variantMeanNs[a] <
                                     m.variantMeanNs[b];
                          });
                const size_t top = std::max<size_t>(
                    1, order.size() / 10);
                size_t with_flag = 0;
                for (size_t k = 0; k < top; ++k) {
                    with_flag +=
                        r.exploration.variants[order[k]]
                            .mostlyHasFlag(bit);
                }
                in_optimal |= with_flag * 2 >= top;
            }
            optimal += in_optimal;
        }
        t.addRow({tuner::flagName(bit), std::to_string(total),
                  std::to_string(changes) + " (" +
                      TextTable::num(100.0 * changes / total, 0) + "%)",
                  std::to_string(optimal) + " (" +
                      TextTable::num(100.0 * optimal / total, 0) +
                      "%)"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf(
        "Paper reading: ADCE never changes the output (no red/green "
        "at all). Coalesce\napplies almost everywhere; Div-to-Mul and "
        "FP-Reassociate to >50%%; Unroll and\ninteger Reassociate "
        "rarely. Optimality is fickle for near-zero flags.\n");
    return 0;
}
