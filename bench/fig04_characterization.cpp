/**
 * @file
 * Fig 4 reproduction: corpus characterisation.
 *  (a) lines of code after preprocessing (executable lines only);
 *  (b) ARM static-analyser cycles (arith + load/store + texture on the
 *      longest path);
 *  (c) unique shader variants generated from all 256 flag combinations.
 */
#include <algorithm>

#include "analysis/loc.h"
#include "bench_common.h"
#include "glsl/frontend.h"
#include "gpu/codegen.h"
#include "lower/lower.h"

using namespace gsopt;

int
main()
{
    bench::banner("Figure 4",
                  "Benchmark characterisation: (a) LoC after "
                  "preprocessing, (b) ARM static cycles, (c) unique "
                  "variants per shader");
    const auto &eng = bench::engine();

    std::vector<double> locs, cycles, variants;
    for (const auto &r : eng.results()) {
        locs.push_back(analysis::executableLines(
            r.exploration.preprocessedOriginal));
        glsl::CompiledShader cs =
            glsl::compileShader(r.exploration.preprocessedOriginal);
        auto module = lower::lowerShader(cs);
        cycles.push_back(gpu::maliStaticAnalysis(*module).total());
        variants.push_back(
            static_cast<double>(r.exploration.uniqueCount()));
    }

    std::printf("---- (a) Lines of code after preprocessing (paper: "
                "power law, majority < 50,\n       max ~300) ----\n");
    std::printf("  %s\n%s\n", summarize(locs).str().c_str(),
                renderHistogram(histogram(locs, 12), 48).c_str());

    std::printf("---- (b) ARM static shader analyser: cycles on the "
                "longest path ----\n");
    std::printf("  %s\n%s\n", summarize(cycles).str().c_str(),
                renderHistogram(histogram(cycles, 12), 48).c_str());

    std::printf("---- (c) Unique variants out of %llu flag combinations "
                "(paper: max 48, most < 10) ----\n",
                static_cast<unsigned long long>(tuner::comboCount()));
    std::printf("  %s\n%s\n", summarize(variants).str().c_str(),
                renderHistogram(histogram(variants, 12), 48).c_str());

    // Top-5 largest shaders by each metric, for the curious.
    TextTable t({"shader", "LoC", "ARM cycles", "variants"});
    std::vector<size_t> idx(eng.results().size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        return locs[a] > locs[b];
    });
    for (size_t k = 0; k < 5 && k < idx.size(); ++k) {
        size_t i = idx[k];
        t.addRow({eng.results()[i].exploration.shaderName,
                  TextTable::num(locs[i], 0),
                  TextTable::num(cycles[i], 1),
                  TextTable::num(variants[i], 0)});
    }
    std::printf("Largest shaders:\n%s\n", t.str().c_str());
    return 0;
}
