/**
 * @file
 * Table I reproduction: the best static flag set per platform — the
 * flag combination maximising the mean speed-up across the whole
 * corpus, i.e. the optimal compile settings when per-shader adaptation
 * is impossible.
 */
#include "bench_common.h"

using namespace gsopt;

int
main()
{
    bench::banner("Table I",
                  "Best static flags per platform (flags that maximise "
                  "the average speed-up across all shaders)");
    const auto &eng = bench::engine();

    std::vector<std::string> header = {"Platform"};
    for (int b = 0; b < static_cast<int>(tuner::flagCount()); ++b)
        header.push_back(tuner::flagName(b));
    header.push_back("mean speed-up");
    TextTable t(header);

    auto add_row = [&](const std::string &name, tuner::FlagSet flags,
                       double mean_speedup) {
        std::vector<std::string> row = {name};
        for (int b = 0; b < static_cast<int>(tuner::flagCount()); ++b)
            row.push_back(flags.has(b) ? "X" : "-");
        row.push_back(TextTable::num(mean_speedup, 2) + "%");
        t.addRow(row);
    };

    for (gpu::DeviceId dev : gpu::allDevices()) {
        tuner::FlagSet flags = eng.bestStaticFlags(dev);
        add_row(gpu::deviceVendor(dev), flags,
                eng.meanSpeedup(dev, flags));
    }
    tuner::FlagSet overall = eng.bestStaticFlagsOverall();
    double overall_mean = 0;
    for (gpu::DeviceId dev : gpu::allDevices())
        overall_mean += eng.meanSpeedup(dev, overall);
    add_row("All", overall,
            overall_mean / static_cast<double>(gpu::allDevices().size()));

    std::printf("%s\n", t.str().c_str());
    std::printf(
        "Paper Table I for comparison:\n"
        "  Intel:    - X - - X - X X\n"
        "  AMD:      - X - - X - X X\n"
        "  NVIDIA:   - X - - X - X -\n"
        "  ARM:      - X X X X X - -\n"
        "  Qualcomm: - X - - - - X X\n"
        "  All:      - X - - X - X X\n"
        "(columns: ADCE Coalesce GVN Reassociate Unroll Hoist "
        "FP-Reassociate Div-to-Mul)\n");
    return 0;
}
