/**
 * @file
 * Fig 6 reproduction: average speed-up of the 30 most-improved shaders
 * per platform (paper: 4-13%).
 */
#include <algorithm>

#include "bench_common.h"

using namespace gsopt;

int
main()
{
    bench::banner("Figure 6",
                  "Average speed-up for the 30 shaders with the highest "
                  "best speed-up per platform (paper: 4-13%)");
    const auto &eng = bench::engine();

    TextTable t({"Platform", "top-30 mean", "top-30 min", "top-30 max",
                 "best shader"});
    for (gpu::DeviceId dev : gpu::allDevices()) {
        auto best = eng.perShaderBestSpeedups(dev);
        std::vector<size_t> idx(best.size());
        for (size_t i = 0; i < idx.size(); ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
            return best[a] > best[b];
        });
        const size_t n = std::min<size_t>(30, idx.size());
        std::vector<double> top;
        for (size_t k = 0; k < n; ++k)
            top.push_back(best[idx[k]]);
        t.addRow(
            {gpu::deviceVendor(dev),
             TextTable::num(mean(top), 2) + "%",
             TextTable::num(top.back(), 2) + "%",
             TextTable::num(top.front(), 2) + "%",
             eng.results()[idx[0]].exploration.shaderName});
    }
    std::printf("%s\n", t.str().c_str());
    return 0;
}
