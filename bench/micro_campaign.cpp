/**
 * @file
 * Campaign scaling trajectory for the sharded work-queue engine: runs
 * the same (shader x device) campaign at 1 and 2 workers plus the
 * machine default (GSOPT_THREADS / hardware_concurrency), reports
 * wall-clock per configuration, and verifies the outputs are
 * bit-identical across thread counts (the engine's core invariant —
 * per-item result slots, deterministic measurement seeds).
 *
 * The driver compile cache is cleared before every configuration so
 * each one pays the same cold-compile work; campaign results land in
 * per-item slots, so scaling is pure scheduling.
 *
 * Pass --full to run the entire corpus instead of the probe set.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "gpu/driver.h"
#include "support/thread_pool.h"

using namespace gsopt;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
identicalResults(const tuner::ExperimentEngine &a,
                 const tuner::ExperimentEngine &b)
{
    if (a.results().size() != b.results().size())
        return false;
    for (size_t i = 0; i < a.results().size(); ++i) {
        const tuner::ShaderResult &ra = a.results()[i];
        const tuner::ShaderResult &rb = b.results()[i];
        const tuner::Exploration &ea = ra.exploration;
        const tuner::Exploration &eb = rb.exploration;
        if (ea.shaderName != eb.shaderName ||
            ea.preprocessedOriginal != eb.preprocessedOriginal ||
            ea.exploredFlagCount != eb.exploredFlagCount ||
            ea.passthroughVariant != eb.passthroughVariant ||
            ea.variantOfCombo != eb.variantOfCombo ||
            ea.variants.size() != eb.variants.size() ||
            ra.byDevice.size() != rb.byDevice.size())
            return false;
        for (size_t v = 0; v < ea.variants.size(); ++v) {
            const tuner::Variant &va = ea.variants[v];
            const tuner::Variant &vb = eb.variants[v];
            if (va.source != vb.source ||
                va.sourceHash != vb.sourceHash ||
                !(va.producers == vb.producers))
                return false;
        }
        for (const auto &[dev, m] : ra.byDevice) {
            auto it = rb.byDevice.find(dev);
            if (it == rb.byDevice.end() || !(m == it->second))
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool full =
        argc > 1 && std::strcmp(argv[1], "--full") == 0;

    bench::banner("micro_campaign",
                  "Work-queue campaign scaling: wall-clock vs worker "
                  "count, outputs verified bit-identical");

    std::vector<corpus::CorpusShader> probe;
    if (full) {
        probe = corpus::corpus();
    } else {
        for (const char *name :
             {"blur/weighted9", "simple/grayscale", "tonemap/aces",
              "toon/bands3", "deferred/lights4", "pbr/full",
              "fxaa/high", "godrays/march32", "ssao/kernel16",
              "uber/car_chase"}) {
            probe.push_back(*corpus::findShader(name));
        }
    }

    std::vector<unsigned> configs = {1, 2};
    const unsigned machine = defaultThreadCount();
    if (machine != 1 && machine != 2)
        configs.push_back(machine);

    std::printf("Probe set: %zu shaders x %llu combos x %zu devices "
                "(machine default: %u workers)%s\n\n",
                probe.size(),
                static_cast<unsigned long long>(tuner::comboCount()),
                gpu::allDevices().size(), machine,
                full ? " (full corpus)" : "");

    struct Run
    {
        unsigned threads;
        double wallMs;
    };
    std::vector<Run> runs;
    std::vector<tuner::ExperimentEngine> engines;
    engines.reserve(configs.size());

    for (unsigned threads : configs) {
        gpu::clearDriverCache();
        const double t0 = nowMs();
        engines.emplace_back(probe, threads);
        runs.push_back({threads, nowMs() - t0});
    }

    bool all_identical = true;
    for (size_t i = 1; i < engines.size(); ++i)
        all_identical &= identicalResults(engines[0], engines[i]);

    std::printf("Campaign wall-clock by worker count:\n");
    std::printf("  %-10s %12s %10s\n", "workers", "wall", "speedup");
    for (const Run &r : runs) {
        std::printf("  %-10u %9.1f ms %9.2fx%s\n", r.threads, r.wallMs,
                    runs[0].wallMs / r.wallMs,
                    r.threads == machine ? "  (machine default)" : "");
    }
    std::printf("\nCross-thread-count results: %s\n",
                all_identical ? "bit-identical"
                              : "MISMATCH (engine invariant broken!)");
    return all_identical ? 0 : 1;
}
