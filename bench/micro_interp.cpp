/**
 * @file
 * Interpreter throughput: scalar slot engine vs the batched SIMT
 * engine, one representative shader per corpus family, with a batch
 * width sweep (W = 1/4/8/16). Both paths shade the same tile through
 * runtime::interpretTile — the bulk-verification entry point the
 * corpus checks and the fuzz harness use — so the numbers measure the
 * fast path as it is actually consumed, including environment setup
 * and per-lane result extraction. The headline figure is the geomean
 * speedup at the default width across all families (target >= 8x);
 * W=1 shows the pure SoA-bookkeeping overhead floor, and the sweep
 * shows where lane-parallelism saturates per family.
 */
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "corpus/corpus.h"
#include "glsl/frontend.h"
#include "lower/lower.h"
#include "passes/passes.h"
#include "runtime/framework.h"

using namespace gsopt;

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

constexpr size_t kTileW = 64;
constexpr size_t kTileH = 48;
constexpr size_t kFragments = kTileW * kTileH;

/** Best-of-3 wall-clock for one tile configuration, in ms. */
double
timeTile(const ir::Module &module, const glsl::ShaderInterface &iface,
         size_t batchWidth)
{
    runtime::TileOptions opts;
    opts.width = kTileW;
    opts.height = kTileH;
    opts.batchWidth = batchWidth;
    // Warm-up run also verifies the config executes.
    runtime::interpretTile(module, iface, opts);
    double best = 1e300;
    for (int trial = 0; trial < 3; ++trial) {
        const double t0 = nowMs();
        runtime::interpretTile(module, iface, opts);
        best = std::min(best, nowMs() - t0);
    }
    return best;
}

} // namespace

int
main()
{
    bench::banner("micro_interp",
                  "Batched SIMT interpreter vs scalar slot engine "
                  "(invocations/sec per corpus family)");

    // One representative per family: the first corpus entry of each.
    std::vector<const corpus::CorpusShader *> reps;
    {
        std::map<std::string, bool> seen;
        for (const auto &s : corpus::corpus()) {
            if (!seen[s.family]) {
                seen[s.family] = true;
                reps.push_back(&s);
            }
        }
    }

    const size_t widths[] = {1, 4, 8, 16};
    std::printf("Tile: %zux%zu = %zu fragment invocations per run, "
                "best of 3.\n\n",
                kTileW, kTileH, kFragments);
    std::printf("  %-22s %10s |", "family (shader)", "scalar");
    for (size_t w : widths)
        std::printf("  %7s W=%-2zu", "", w);
    std::printf("\n  %-22s %10s |", "", "Minv/s");
    for (size_t w : widths) {
        std::printf("  %7s %4s", "Minv/s", "x");
        (void)w;
    }
    std::printf("\n");

    double logSum8 = 0.0, logSum16 = 0.0;
    size_t families = 0;
    for (const corpus::CorpusShader *s : reps) {
        glsl::CompiledShader cs =
            glsl::compileShader(s->source, s->defines);
        auto module = lower::lowerShader(cs);
        passes::canonicalize(*module);

        const double scalarMs = timeTile(*module, cs.interface, 0);
        const double scalarRate =
            static_cast<double>(kFragments) / scalarMs / 1e3; // Minv/s
        std::printf("  %-22s %10.2f |", s->family.c_str(), scalarRate);
        for (size_t w : widths) {
            const double ms = timeTile(*module, cs.interface, w);
            const double rate =
                static_cast<double>(kFragments) / ms / 1e3;
            std::printf("  %7.2f %4.1f", rate, scalarMs / ms);
            if (w == 8)
                logSum8 += std::log(scalarMs / ms);
            if (w == 16)
                logSum16 += std::log(scalarMs / ms);
        }
        std::printf("   (%s)\n", s->name.c_str());
        ++families;
    }

    const double n = static_cast<double>(families);
    std::printf("\nGeomean speedup over %zu families:\n", families);
    std::printf("  W=8  : %6.2fx\n", std::exp(logSum8 / n));
    std::printf("  W=16 : %6.2fx  (default width; target >= 8x)\n",
                std::exp(logSum16 / n));
    return 0;
}
